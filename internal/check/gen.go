package check

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// Topo is one generated topology plus the spec that rebuilds it.
type Topo struct {
	Desc string
	G    *topology.Graph
}

// GenTopology draws a topology from the generator mix: seeded random
// graphs, rings, grids, the two-region network of Figure 1, hierarchical
// multi-region and Waxman graphs (the sharded runner's topology classes),
// and — when maxNodes allows — the real ARPANET and MILNET maps. The same
// rng state always yields the same topology, and Desc names the exact
// build.
func GenTopology(rng *rand.Rand, maxNodes int) Topo {
	if maxNodes < 4 {
		maxNodes = 4
	}
	lts := []topology.LineType{topology.T9_6, topology.T56, topology.S56, topology.T112}
	for {
		switch rng.Intn(10) {
		case 0, 1, 2:
			n := 4 + rng.Intn(maxNodes-3)
			deg := 1.5 + 2*rng.Float64()
			seed := rng.Int63()
			lt := lts[rng.Intn(len(lts))]
			return Topo{
				Desc: fmt.Sprintf("random(n=%d deg=%.2f seed=%d lt=%v)", n, deg, seed, lt),
				G:    topology.Random(n, deg, seed, lt, topology.T56),
			}
		case 3:
			n := 4 + rng.Intn(maxNodes-3)
			return Topo{Desc: fmt.Sprintf("ring(n=%d)", n), G: topology.Ring(n, topology.T56)}
		case 4:
			w := 2 + rng.Intn(3)
			h := 2 + rng.Intn(3)
			if w*h > maxNodes {
				w, h = 2, 2
			}
			return Topo{Desc: fmt.Sprintf("grid(%dx%d)", w, h), G: topology.Grid(w, h, topology.T56)}
		case 5:
			n := 2 + rng.Intn(4)
			if 2*n > maxNodes {
				n = maxNodes / 2
			}
			g, _, _ := topology.TwoRegion(n, topology.T56)
			return Topo{Desc: fmt.Sprintf("tworegion(n=%d)", n), G: g}
		case 6:
			if maxNodes >= 30 { // the July-1987-like map has 30 PSNs
				return Topo{Desc: "arpanet", G: topology.Arpanet()}
			}
		case 7:
			regions := 2 + rng.Intn(4)
			per := 3 + rng.Intn(6)
			if regions*per <= maxNodes {
				seed := rng.Int63()
				return Topo{
					Desc: fmt.Sprintf("hier(r=%d per=%d seed=%d)", regions, per, seed),
					G:    topology.Hierarchical(regions, per, seed),
				}
			}
		case 8:
			n := 4 + rng.Intn(maxNodes-3)
			alpha := 0.3 + 0.5*rng.Float64()
			beta := 0.05 + 0.3*rng.Float64()
			seed := rng.Int63()
			return Topo{
				Desc: fmt.Sprintf("waxman(n=%d a=%.2f b=%.2f seed=%d)", n, alpha, beta, seed),
				G:    topology.Waxman(n, alpha, beta, seed, lts...),
			}
		default:
			if maxNodes >= 26 { // the MILNET map has 26 PSNs
				return Topo{Desc: "milnet", G: topology.Milnet()}
			}
		}
	}
}

// GenCost draws one positive link cost. Half the time costs are small
// integers, which makes equal-cost paths — the tie-breaking cases where
// incremental-SPF bugs hide — common rather than measure-zero.
func GenCost(rng *rand.Rand, integer bool) float64 {
	if integer {
		return float64(1 + rng.Intn(8))
	}
	return 0.1 + 99.9*rng.Float64()
}

// GenCosts draws a cost per simplex link; integer selects the tie-rich
// small-integer regime for every link so the caller can keep follow-up
// cost changes in the same regime.
func GenCosts(rng *rand.Rand, g *topology.Graph, integer bool) []float64 {
	costs := make([]float64, g.NumLinks())
	for i := range costs {
		costs[i] = GenCost(rng, integer)
	}
	return costs
}
