// Package check is the randomized correctness harness of the repository:
// property-based and differential testing for the routing stack, one rung
// above the hand-picked scenarios and golden traces.
//
// It has three pillars:
//
//   - differential oracles (spfcheck.go): on seeded generated topologies
//     with random weights and failures, the incremental SPF router is
//     checked after every link-cost change against a fresh from-scratch
//     Dijkstra and against an independent naive Bellman-Ford reference,
//     with distance equality and hop-by-hop loop freedom asserted for
//     every (src, dst) pair;
//
//   - paper-invariant checkers (metriccheck.go, floodcheck.go,
//     scenariocheck.go): every metric implementation stays within its
//     Floor/Ceiling band and respects the §4.2/§4.3 per-update movement
//     limits; the reliable flood of the updating protocol delivers every
//     update to every node under random losses and partitions once the
//     lines are back; and the packet-conservation ledger, single-
//     transmitter and convergence audits of internal/scenario hold under
//     randomized fault scripts;
//
//   - shrinking reproducers (shrink.go): when a check fails, the input
//     that broke it — an update stream, a delay sequence, a flood op list,
//     a fault script — is minimized by delta debugging and rendered as a
//     self-contained reproducer (for scenario failures, a committable .scn
//     script), so a campaign failure becomes a regression test instead of
//     a seed number in a log.
//
// Campaigns (campaign.go) bundle the pillars behind one seed: the same
// seed always generates the same topologies, inputs and verdicts, so any
// failure anywhere reproduces from its campaign seed alone. cmd/checker
// fans campaigns over worker goroutines.
package check

import "fmt"

// Failure is one invariant violation found by a checker, carrying enough
// to reproduce it without the harness: the campaign seed, the generated
// input's description, and a minimized reproducer.
type Failure struct {
	// Check names the failed checker: "spf-differential", "metric-invariant",
	// "flood-delivery" or "scenario-audit".
	Check string
	// Seed is the campaign seed that generated the failing input.
	Seed int64
	// Topo describes the generated topology, e.g. "random(n=12 deg=2.6 seed=77)".
	Topo string
	// Err is the violated property.
	Err string
	// Repro is the minimized reproducer: an op list, or for scenario
	// failures a complete .scn script.
	Repro string
}

// String renders the failure for campaign logs.
func (f *Failure) String() string {
	return fmt.Sprintf("%s seed=%d topo=%s: %s\nreproducer:\n%s",
		f.Check, f.Seed, f.Topo, f.Err, f.Repro)
}
