package check

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/spf"
	"repro/internal/topology"
)

// tiePersistRouter is a deliberately broken incremental router carrying the
// classic tie-break bug of increase repair: when the cost of a link that
// supports a node's shortest distance goes up, it looks for another in-link
// offering the same distance and — if one exists — assumes the tie persists
// and keeps every distance unchanged. The alternate support's own distance
// may run through the increased link upstream, so the "tie" can be an
// artifact of the stale table: the router then advertises a distance the
// network can no longer achieve. The differential oracle must catch this
// against the fresh-Dijkstra reference.
type tiePersistRouter struct {
	g     *topology.Graph
	root  topology.NodeID
	costs []float64
	ws    *spf.Workspace
	dist  []float64
	next  []topology.LinkID
}

func newTiePersistRouter(g *topology.Graph, root topology.NodeID, costs []float64) Router {
	b := &tiePersistRouter{
		g:     g,
		root:  root,
		costs: append([]float64(nil), costs...),
		ws:    spf.NewWorkspace(),
		dist:  make([]float64, g.NumNodes()),
		next:  make([]topology.LinkID, g.NumNodes()),
	}
	b.recompute()
	return b
}

func (b *tiePersistRouter) recompute() {
	t := spf.ComputeInto(b.ws, b.g, b.root, func(l topology.LinkID) float64 { return b.costs[l] })
	for i := range b.dist {
		b.dist[i] = t.Dist(topology.NodeID(i))
		b.next[i] = t.NextHop(topology.NodeID(i))
	}
}

func (b *tiePersistRouter) Update(l topology.LinkID, c float64) {
	old := b.costs[l]
	b.costs[l] = c
	if c >= old {
		lk := b.g.Link(l)
		if b.dist[lk.To] != b.dist[lk.From]+old {
			// The link supported no shortest path (any shortest path
			// through l would pin this equality), so no distance moves.
			return
		}
		// BUG: if any other in-link offers the same distance we declare the
		// tie persistent and keep the whole table — without checking that
		// the alternate support is independent of l.
		for _, e := range b.g.In(lk.To) {
			if e == l {
				continue
			}
			el := b.g.Link(e)
			if b.dist[el.From]+b.costs[e] == b.dist[lk.To] {
				if el.From == b.root {
					b.next[lk.To] = e
				} else {
					b.next[lk.To] = b.next[el.From]
				}
				return
			}
		}
	}
	b.recompute()
}

func (b *tiePersistRouter) Dist(dst topology.NodeID) float64            { return b.dist[dst] }
func (b *tiePersistRouter) NextHop(dst topology.NodeID) topology.LinkID { return b.next[dst] }

// TestInjectedTieBreakBugCaught proves the differential oracle's teeth: the
// tie-persistence bug above must be detected, and the reproducer that comes
// back must be minimized — still failing, and 1-minimal in the sense that
// removing any single remaining op makes the failure vanish.
func TestInjectedTieBreakBugCaught(t *testing.T) {
	t.Parallel()
	factory := func(g *topology.Graph, root topology.NodeID, costs []float64) Router {
		return newTiePersistRouter(g, root, costs)
	}
	var fail *Failure
	var min []SPFOp
	var topo Topo
	var costs []float64
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f, m, tp, cs := checkSPF(rng, seed, factory)
		if f != nil {
			fail, min, topo, costs = f, m, tp, cs
			break
		}
	}
	if fail == nil {
		t.Fatal("differential oracle never caught the injected tie-break bug in 500 trials")
	}
	t.Logf("caught at seed %d on %s with %d minimized ops:\n%s", fail.Seed, fail.Topo, len(min), fail.Repro)
	if fail.Check != "spf-differential" {
		t.Fatalf("failure check = %q, want spf-differential", fail.Check)
	}
	if !strings.Contains(fail.Repro, "error:") || !strings.Contains(fail.Repro, "topo:") {
		t.Fatalf("reproducer is not self-contained:\n%s", fail.Repro)
	}
	if len(min) == 0 {
		t.Fatal("minimized op list is empty")
	}
	if !replaySPFFails(topo.G, costs, min, factory) {
		t.Fatal("minimized op list does not reproduce the failure")
	}
	for i := range min {
		sub := append(append([]SPFOp(nil), min[:i]...), min[i+1:]...)
		if len(sub) > 0 && replaySPFFails(topo.G, costs, sub, factory) {
			t.Fatalf("reproducer is not 1-minimal: still fails without op %d of %d", i, len(min))
		}
	}
}

// TestCheckSPFProductionClean spot-checks that the production incremental
// router passes the oracle on a spread of seeds (the campaign test covers
// many more).
func TestCheckSPFProductionClean(t *testing.T) {
	t.Parallel()
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if f := CheckSPF(rng, seed, IncrementalFactory); f != nil {
			t.Fatalf("production router failed the oracle:\n%s", f.Repro)
		}
	}
}

func TestMinimize(t *testing.T) {
	t.Parallel()
	ops := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	fails := func(sub []int) bool {
		has3, has7 := false, false
		for _, v := range sub {
			has3 = has3 || v == 3
			has7 = has7 || v == 7
		}
		return has3 && has7
	}
	got := Minimize(ops, fails)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("Minimize = %v, want [3 7]", got)
	}
	// A single-element failing sequence must survive unchanged.
	one := Minimize([]int{5}, func(sub []int) bool { return len(sub) > 0 })
	if len(one) != 1 || one[0] != 5 {
		t.Fatalf("Minimize([5]) = %v", one)
	}
}
