package check

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"

	"repro/internal/topology"
	"repro/internal/updating"
)

// floodOp is one event of a flood-delivery trial.
type floodOp struct {
	kind string // "originate", "step", "down", "up", "isolate"
	node topology.NodeID
	link topology.LinkID
}

func (op floodOp) String() string {
	switch op.kind {
	case "originate":
		return fmt.Sprintf("originate %d", op.node)
	case "isolate":
		return fmt.Sprintf("isolate %d", op.node)
	case "step":
		return "step"
	default:
		return fmt.Sprintf("%s %d", op.kind, op.link)
	}
}

// CheckFlood runs one flood-delivery trial: on a generated topology with a
// random per-transmission loss rate up to 50%, a random interleaving of
// originations, protocol rounds, line failures (including fully isolating a
// node, which partitions the network) and repairs. After the event script
// every line is restored and the protocol runs until quiet; the reliable
// flood must then have delivered every originated update to every node —
// all nodes are reachable again, so Converged must hold for every origin
// that generated one.
//
// The script is kept short enough (well under updating.MaxAge rounds in
// total) that entry aging cannot expire a legitimately delivered update and
// masquerade as a delivery failure.
func CheckFlood(rng *rand.Rand, seed int64) *Failure {
	topo := GenTopology(rng, 16)
	loss := 0.5 * rng.Float64()
	netSeed := rng.Int63()

	nOps := 8 + rng.Intn(16)
	ops := make([]floodOp, 0, nOps)
	steps := 0
	for len(ops) < nOps {
		switch rng.Intn(6) {
		case 0, 1:
			ops = append(ops, floodOp{kind: "originate", node: topology.NodeID(rng.Intn(topo.G.NumNodes()))})
		case 2:
			ops = append(ops, floodOp{kind: "down", link: randTrunkLink(rng, topo.G)})
		case 3:
			ops = append(ops, floodOp{kind: "up", link: randTrunkLink(rng, topo.G)})
		case 4:
			ops = append(ops, floodOp{kind: "isolate", node: topology.NodeID(rng.Intn(topo.G.NumNodes()))})
		default:
			if steps < 8 { // keep the scripted rounds far below MaxAge
				ops = append(ops, floodOp{kind: "step"})
				steps++
			}
		}
	}

	if err := runFloodTrace(topo.G, loss, netSeed, ops); err != nil {
		min := Minimize(ops, func(sub []floodOp) bool {
			return runFloodTrace(topo.G, loss, netSeed, sub) != nil
		})
		finalErr := runFloodTrace(topo.G, loss, netSeed, min)
		var b strings.Builder
		fmt.Fprintf(&b, "topo: %s\n", topo.Desc)
		fmt.Fprintf(&b, "loss: %.4f\nnetseed: %d\n", loss, netSeed)
		for _, op := range min {
			b.WriteString(op.String())
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "error: %v\n", finalErr)
		return &Failure{
			Check: "flood-delivery",
			Seed:  seed,
			Topo:  topo.Desc,
			Err:   finalErr.Error(),
			Repro: b.String(),
		}
	}
	return nil
}

// randTrunkLink picks the forward direction of a random trunk (trunk t owns
// links 2t and 2t+1); the updating engine takes both directions down or up
// together.
func randTrunkLink(rng *rand.Rand, g *topology.Graph) topology.LinkID {
	return topology.LinkID(2 * rng.Intn(g.NumTrunks()))
}

// runFloodTrace replays an event script on a fresh protocol engine and
// verifies delivery. Deterministic for fixed (g, loss, seed, ops), which
// lets ddmin shrink the script.
func runFloodTrace(g *topology.Graph, loss float64, seed int64, ops []floodOp) error {
	nw := updating.New(g, loss, seed)
	down := make(map[topology.LinkID]bool)
	var origins []topology.NodeID
	originated := make(map[topology.NodeID]bool)
	for _, op := range ops {
		switch op.kind {
		case "originate":
			costs := make([]float64, g.Degree(op.node))
			for i := range costs {
				costs[i] = 1
			}
			nw.Originate(op.node, costs)
			if !originated[op.node] {
				originated[op.node] = true
				origins = append(origins, op.node)
			}
		case "step":
			nw.Step()
		case "down":
			nw.SetLineDown(op.link)
			down[canonicalLink(g, op.link)] = true
		case "up":
			nw.SetLineUp(op.link)
			delete(down, canonicalLink(g, op.link))
		case "isolate":
			for _, lid := range g.Out(op.node) {
				nw.SetLineDown(lid)
				down[canonicalLink(g, lid)] = true
			}
		}
	}
	// Repair in link order, not map order: SetLineUp queues full-table
	// resyncs on the restored line, and this function's determinism
	// contract (fixed (g, loss, seed, ops) ⇒ fixed outcome, which ddmin
	// shrinking relies on) must not rest on map iteration order.
	repair := make([]topology.LinkID, 0, len(down))
	for l := range down {
		repair = append(repair, l)
	}
	slices.Sort(repair)
	for _, l := range repair {
		nw.SetLineUp(l)
	}
	rounds, quiet := nw.RunUntilQuiet(100)
	if !quiet {
		return fmt.Errorf("flood did not drain within 100 rounds after repairs (%d origins pending)", len(origins))
	}
	for _, o := range origins {
		if !nw.Converged(o) {
			return fmt.Errorf("update from origin %d not delivered everywhere (drained after %d rounds)", o, rounds)
		}
	}
	return nil
}

// canonicalLink maps either direction of a trunk to its forward link so the
// down-set has one entry per trunk.
func canonicalLink(g *topology.Graph, l topology.LinkID) topology.LinkID {
	r := g.Link(l).Reverse()
	if r < l {
		return r
	}
	return l
}
