package check

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/spf"
	"repro/internal/topology"
)

// OutageCost models a failed link in the SPF oracle: the cost a PSN floods
// for a line it wants traffic off of entirely. It is finite (the spf
// package requires positive finite costs) but dwarfs any sum of ordinary
// generated costs.
const OutageCost = 1e6

// Router is the forwarding surface the SPF differential oracle verifies:
// apply a link-cost change, then answer distance and next-hop queries.
// The production implementation is internal/spf's IncrementalRouter; tests
// inject deliberately broken implementations to prove the oracle catches
// them.
type Router interface {
	Update(l topology.LinkID, cost float64)
	Dist(dst topology.NodeID) float64
	NextHop(dst topology.NodeID) topology.LinkID
}

// RouterFactory builds the Router under test for one root.
type RouterFactory func(g *topology.Graph, root topology.NodeID, costs []float64) Router

// incrRouter adapts *spf.IncrementalRouter: its Tree is repaired in place,
// so it is re-read on every query.
type incrRouter struct{ r *spf.IncrementalRouter }

func (a incrRouter) Update(l topology.LinkID, c float64)       { a.r.Update(l, c) }
func (a incrRouter) Dist(d topology.NodeID) float64            { return a.r.Tree().Dist(d) }
func (a incrRouter) NextHop(d topology.NodeID) topology.LinkID { return a.r.Tree().NextHop(d) }

// IncrementalFactory is the production RouterFactory: the incremental
// repair path of internal/spf.
func IncrementalFactory(g *topology.Graph, root topology.NodeID, costs []float64) Router {
	return incrRouter{spf.NewIncrementalRouter(g, root, costs)}
}

// SPFOp is one link-cost change of an oracle trial.
type SPFOp struct {
	Link topology.LinkID
	Cost float64
}

// CheckSPF runs one differential-oracle trial: a generated topology with
// random costs, one Router per root, and a random stream of cost changes
// (including outage-grade jumps and repairs). After every change, every
// root's distances must equal a fresh from-scratch Dijkstra exactly and a
// naive Bellman-Ford reference to within float tolerance, and hop-by-hop
// forwarding between every (src, dst) pair must be loop-free. On failure
// the op stream is minimized and rendered as a reproducer.
func CheckSPF(rng *rand.Rand, seed int64, factory RouterFactory) *Failure {
	f, _, _, _ := checkSPF(rng, seed, factory)
	return f
}

func checkSPF(rng *rand.Rand, seed int64, factory RouterFactory) (*Failure, []SPFOp, Topo, []float64) {
	topo := GenTopology(rng, 30)
	integer := rng.Intn(2) == 0
	costs := GenCosts(rng, topo.G, integer)

	n := topo.G.NumNodes()
	nOps := 12 + rng.Intn(36)
	if n > 15 {
		nOps /= 2
	}
	ops := make([]SPFOp, nOps)
	down := make(map[topology.LinkID]bool)
	for i := range ops {
		l := topology.LinkID(rng.Intn(topo.G.NumLinks()))
		var c float64
		switch {
		case down[l]: // repair an outaged link
			c = GenCost(rng, integer)
			delete(down, l)
		case rng.Intn(10) == 0: // outage
			c = OutageCost
			down[l] = true
		default:
			c = GenCost(rng, integer)
		}
		ops[i] = SPFOp{Link: l, Cost: c}
	}

	routers, cur := buildRouters(topo.G, costs, factory)
	ws := spf.NewWorkspace()
	if err := verifySPF(topo.G, cur, routers, ws); err != nil {
		// The initial build is already wrong; minimization has nothing to
		// remove.
		return spfFailure(seed, topo, costs, nil, err), nil, topo, costs
	}
	for k, op := range ops {
		applyOp(routers, cur, op)
		if err := verifySPF(topo.G, cur, routers, ws); err != nil {
			failing := ops[:k+1]
			min := Minimize(failing, func(sub []SPFOp) bool {
				return replaySPFFails(topo.G, costs, sub, factory)
			})
			return spfFailure(seed, topo, costs, min, err), min, topo, costs
		}
	}
	return nil, nil, topo, costs
}

func buildRouters(g *topology.Graph, costs []float64, factory RouterFactory) ([]Router, []float64) {
	routers := make([]Router, g.NumNodes())
	for i := range routers {
		routers[i] = factory(g, topology.NodeID(i), costs)
	}
	return routers, append([]float64(nil), costs...)
}

func applyOp(routers []Router, cur []float64, op SPFOp) {
	cur[op.Link] = op.Cost
	for _, r := range routers {
		r.Update(op.Link, op.Cost)
	}
}

// replaySPFFails rebuilds the routers, applies the op subsequence and
// reports whether verification fails afterwards — the predicate ddmin
// minimizes against.
func replaySPFFails(g *topology.Graph, costs []float64, ops []SPFOp, factory RouterFactory) bool {
	routers, cur := buildRouters(g, costs, factory)
	for _, op := range ops {
		applyOp(routers, cur, op)
	}
	return verifySPF(g, cur, routers, spf.NewWorkspace()) != nil
}

// verifySPF checks every root's Router against the two references and
// checks global hop-by-hop loop freedom.
func verifySPF(g *topology.Graph, cur []float64, routers []Router, ws *spf.Workspace) error {
	n := g.NumNodes()
	costFn := func(l topology.LinkID) float64 { return cur[l] }
	for root := 0; root < n; root++ {
		r := routers[root]
		fresh := spf.ComputeInto(ws, g, topology.NodeID(root), costFn)
		bf := bellmanFordDist(g, topology.NodeID(root), cur)
		for dst := 0; dst < n; dst++ {
			got := r.Dist(topology.NodeID(dst))
			want := fresh.Dist(topology.NodeID(dst))
			// lint:ignore floatexact bit-exact differential oracle: incremental SPF must match a fresh Dijkstra exactly, same ops in same order
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				return fmt.Errorf("root %d: dist to %d = %v, fresh Dijkstra says %v", root, dst, got, want)
			}
			if ref := bf[dst]; !distClose(got, ref) {
				return fmt.Errorf("root %d: dist to %d = %v, Bellman-Ford reference says %v", root, dst, got, ref)
			}
			next := r.NextHop(topology.NodeID(dst))
			switch {
			case dst == root || math.IsInf(got, 1):
				if next != topology.NoLink {
					return fmt.Errorf("root %d: next hop to %d is %d, want none", root, dst, next)
				}
			case next == topology.NoLink:
				return fmt.Errorf("root %d: reachable node %d has no next hop", root, dst)
			case g.Link(next).From != topology.NodeID(root):
				return fmt.Errorf("root %d: next hop to %d is link %d leaving node %d", root, dst, next, g.Link(next).From)
			}
		}
	}
	// Loop freedom of hop-by-hop forwarding: following each node's own next
	// hop toward dst must reach dst within n hops whenever the source
	// believes dst reachable. With every router holding true shortest
	// distances this is a theorem; a tie-break or repair bug breaks it.
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || math.IsInf(routers[src].Dist(topology.NodeID(dst)), 1) {
				continue
			}
			at := topology.NodeID(src)
			for hops := 0; ; hops++ {
				if at == topology.NodeID(dst) {
					break
				}
				if hops > n {
					return fmt.Errorf("forwarding loop from %d to %d", src, dst)
				}
				next := routers[at].NextHop(topology.NodeID(dst))
				if next == topology.NoLink {
					return fmt.Errorf("forwarding from %d to %d strands at %d", src, dst, at)
				}
				at = g.Link(next).To
			}
		}
	}
	return nil
}

// distClose compares a distance against the Bellman-Ford reference with a
// relative tolerance: both algorithms sum the same path costs left to
// right, so they agree to the last bit in practice, but the oracle does not
// rely on that.
func distClose(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

func spfFailure(seed int64, topo Topo, costs []float64, ops []SPFOp, err error) *Failure {
	var b strings.Builder
	fmt.Fprintf(&b, "topo: %s\n", topo.Desc)
	b.WriteString("costs:")
	for _, c := range costs {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
	}
	b.WriteByte('\n')
	for _, op := range ops {
		fmt.Fprintf(&b, "update %d %s\n", op.Link, strconv.FormatFloat(op.Cost, 'g', -1, 64))
	}
	fmt.Fprintf(&b, "error: %v\n", err)
	return &Failure{
		Check: "spf-differential",
		Seed:  seed,
		Topo:  topo.Desc,
		Err:   err.Error(),
		Repro: b.String(),
	}
}
