package check

import (
	"math"

	"repro/internal/topology"
)

// bellmanFordDist computes single-source shortest distances by naive
// repeated edge relaxation. It is deliberately written from the textbook —
// independent of both internal/spf (heap Dijkstra) and
// internal/bellmanford (the distributed 1969 engine) — so that it can
// serve as a second opinion on both: an algorithmic bug would have to be
// reproduced here, in a different algorithm, to go unnoticed.
func bellmanFordDist(g *topology.Graph, root topology.NodeID, costs []float64) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	links := g.Links()
	for round := 0; round < n-1; round++ {
		changed := false
		for _, l := range links {
			du := dist[l.From]
			if math.IsInf(du, 1) {
				continue
			}
			if d := du + costs[l.ID]; d < dist[l.To] {
				dist[l.To] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
