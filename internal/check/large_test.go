package check

// Large-graph SPF oracle: the campaign's differential trials top out around
// 30 nodes, so scale bugs — heap-key overflow, quadratic repair paths,
// tie-break drift that only materializes with thousands of equal-cost
// candidates — never meet the oracle. This test runs one incremental-vs-
// fresh differential on the 1024-node hierarchical topology the sharded
// runner simulates: every node holds an incremental router, a stream of
// cost changes (including outages and repairs) hits all of them, sampled
// roots are verified bit-exactly against from-scratch Dijkstra after every
// change, and hop-by-hop forwarding over all pairs is checked loop-free at
// the end.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/spf"
	"repro/internal/topology"
)

func TestLargeGraphSPFOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-node SPF differential skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20260807))
	g := topology.Hierarchical(32, 32, 77)
	n := g.NumNodes()
	costs := GenCosts(rng, g, true) // tie-rich small-integer regime
	routers, cur := buildRouters(g, costs, IncrementalFactory)

	sampled := make([]topology.NodeID, 0, 8)
	for len(sampled) < 8 {
		sampled = append(sampled, topology.NodeID(rng.Intn(n)))
	}
	ws := spf.NewWorkspace()
	costFn := func(l topology.LinkID) float64 { return cur[l] }
	verifySampled := func(step int) {
		t.Helper()
		for _, root := range sampled {
			fresh := spf.ComputeInto(ws, g, root, costFn)
			for dst := 0; dst < n; dst++ {
				got := routers[root].Dist(topology.NodeID(dst))
				want := fresh.Dist(topology.NodeID(dst))
				// lint:ignore floatexact bit-exact differential: incremental SPF must match fresh Dijkstra
				if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
					t.Fatalf("step %d root %d: dist to %d = %v, fresh Dijkstra says %v",
						step, root, dst, got, want)
				}
			}
		}
	}

	verifySampled(0)
	down := make(map[topology.LinkID]bool)
	for step := 1; step <= 24; step++ {
		l := topology.LinkID(rng.Intn(g.NumLinks()))
		var c float64
		switch {
		case down[l]:
			c = GenCost(rng, true)
			delete(down, l)
		case rng.Intn(4) == 0:
			c = OutageCost
			down[l] = true
		default:
			c = GenCost(rng, true)
		}
		applyOp(routers, cur, SPFOp{Link: l, Cost: c})
		verifySampled(step)
	}

	// Loop freedom over every (src, dst) pair, against each node's own
	// incremental tree — the property the whole network relies on.
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || math.IsInf(routers[src].Dist(topology.NodeID(dst)), 1) {
				continue
			}
			at := topology.NodeID(src)
			for hops := 0; at != topology.NodeID(dst); hops++ {
				if hops > n {
					t.Fatalf("forwarding loop from %d to %d", src, dst)
				}
				next := routers[at].NextHop(topology.NodeID(dst))
				if next == topology.NoLink {
					t.Fatalf("forwarding from %d to %d strands at %d", src, dst, at)
				}
				at = g.Link(next).To
			}
		}
	}
}
