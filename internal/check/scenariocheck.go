package check

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// scenOp is one scripted fault of a scenario-audit trial. Keeping the trial
// as a flat op list (rather than a built Scenario) is what lets ddmin drop
// ops and rebuild.
type scenOp struct {
	kind   string // "down", "up", "flap", "surge", "checkpoint"
	at     sim.Time
	a, b   string // trunk endpoints for down/up/flap
	period sim.Time
	cycles int
	factor float64
}

// CheckScenario runs one randomized fault-script trial: a small generated
// topology under light uniform load and a random metric, hit with random
// trunk outages, repairs, flaps and traffic surges. The packet-conservation
// ledger, the single-transmitter audit and the convergence check from
// internal/scenario must hold at every checkpoint. On failure the fault
// script is minimized and rendered as a self-contained .scn scenario file
// (with the topology and seed in comment headers) as the reproducer.
func CheckScenario(rng *rand.Rand, seed int64) *Failure {
	topo := GenTopology(rng, 12)
	g := topo.G
	metric := []node.MetricKind{node.HNSPF, node.DSPF, node.MinHop}[rng.Intn(3)]
	load := 20_000 + rng.Float64()*60_000
	cfgSeed := rng.Int63()
	duration := sim.FromSeconds(60 + 90*rng.Float64())

	nOps := 3 + rng.Intn(6)
	ops := make([]scenOp, 0, nOps)
	for len(ops) < nOps {
		at := sim.Time(rng.Int63n(int64(duration) * 3 / 4))
		switch rng.Intn(6) {
		case 0, 1:
			a, b := randTrunkNames(rng, g)
			ops = append(ops, scenOp{kind: "down", at: at, a: a, b: b})
			if rng.Intn(2) == 0 {
				up := at + sim.FromSeconds(5+20*rng.Float64())
				if up < duration {
					ops = append(ops, scenOp{kind: "up", at: up, a: a, b: b})
				}
			}
		case 2:
			a, b := randTrunkNames(rng, g)
			ops = append(ops, scenOp{kind: "up", at: at, a: a, b: b})
		case 3:
			a, b := randTrunkNames(rng, g)
			cycles := 1 + rng.Intn(3)
			period := sim.FromSeconds(2 + 6*rng.Float64())
			if at+sim.Time(2*cycles+1)*period < duration {
				ops = append(ops, scenOp{kind: "flap", at: at, a: a, b: b, period: period, cycles: cycles})
			}
		case 4:
			ops = append(ops, scenOp{kind: "surge", at: at, factor: 0.5 + 1.5*rng.Float64()})
		default:
			ops = append(ops, scenOp{kind: "checkpoint", at: at})
		}
	}

	cfg := scenario.Config{
		Graph:           g,
		Matrix:          traffic.Uniform(g, load),
		Metric:          metric,
		Seed:            cfgSeed,
		Warmup:          15 * sim.Second,
		StopOnViolation: true,
	}
	if err := runScenOps(cfg, duration, ops); err != nil {
		min := Minimize(ops, func(sub []scenOp) bool {
			return runScenOps(cfg, duration, sub) != nil
		})
		finalErr := runScenOps(cfg, duration, min)
		script, scErr := buildScenario(duration, min).Script()
		if scErr != nil {
			script = fmt.Sprintf("# unserializable: %v\n", scErr)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "# topo: %s\n# metric: %v\n# load: %.0f bps uniform\n# cfgseed: %d\n",
			topo.Desc, metric, load, cfgSeed)
		b.WriteString(script)
		fmt.Fprintf(&b, "# error: %v\n", finalErr)
		return &Failure{
			Check: "scenario-audit",
			Seed:  seed,
			Topo:  topo.Desc,
			Err:   finalErr.Error(),
			Repro: b.String(),
		}
	}
	return nil
}

func randTrunkNames(rng *rand.Rand, g *topology.Graph) (string, string) {
	l := g.Link(topology.LinkID(2 * rng.Intn(g.NumTrunks())))
	return g.Node(l.From).Name, g.Node(l.To).Name
}

func buildScenario(duration sim.Time, ops []scenOp) *scenario.Scenario {
	sc := scenario.NewScenario("check", duration)
	sc.CheckEvery = 10 * sim.Second
	for _, op := range ops {
		switch op.kind {
		case "down":
			sc.DownAt(op.at, op.a, op.b)
		case "up":
			sc.UpAt(op.at, op.a, op.b)
		case "flap":
			sc.FlapAt(op.at, op.a, op.b, op.period, op.cycles)
		case "surge":
			sc.SurgeAt(op.at, op.factor)
		case "checkpoint":
			sc.CheckpointAt(op.at)
		}
	}
	return sc
}

// runScenOps builds and runs one scenario and reports the first audit
// violation (or run error) as an error; nil means every checkpoint's
// conservation, transmitter and convergence audit passed.
func runScenOps(cfg scenario.Config, duration sim.Time, ops []scenOp) error {
	res, err := scenario.Run(cfg, buildScenario(duration, ops))
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if len(res.Violations) > 0 {
		v := res.Violations[0]
		return fmt.Errorf("%s violation at %v: %s", v.Check, v.At, v.Err)
	}
	return nil
}
