package check

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/flowmodel"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestCheckHybrid is the acceptance criterion for the hybrid engine: on
// the ARPANET map, hybrid metric readings and the reroute decisions they
// imply track the full-packet run within the documented tolerance band,
// across both metrics and randomized faults and surges.
func TestCheckHybrid(t *testing.T) {
	t.Parallel()
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	for seed := int64(1); seed <= n; seed++ {
		if f := CheckHybrid(rand.New(rand.NewSource(seed)), seed); f != nil {
			t.Fatalf("hybrid differential failed:\n%s", f.Repro)
		}
	}
}

// TestHybridSensitivity proves the tolerance band actually detects the
// canonical superposition bug — background that never reaches the metric
// loop — by comparing a hybrid run against a packet run carrying only the
// foreground. The background-weighted deviation must land outside the
// band on both metrics (the generator draws HN-SPF on seed 2 and D-SPF on
// seed 1).
func TestHybridSensitivity(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{1, 2} {
		trial, ops := genHybridTrial(rand.New(rand.NewSource(seed)))
		h, err := runHybridSide(trial, ops, true)
		if err != nil {
			t.Fatalf("seed %d hybrid run: %v", seed, err)
		}
		buggy := trial
		buggy.bg = traffic.NewMatrix(trial.g.NumNodes())
		p, err := runHybridSide(buggy, ops, false)
		if err != nil {
			t.Fatalf("seed %d foreground-only run: %v", seed, err)
		}
		unit := func(topology.LinkID) float64 { return 1 }
		w := flowmodel.Assign(trial.g, trial.bg, unit).LinkBPS
		cmpErr := compareHybrid(trial.g, w, h, p)
		if cmpErr == nil {
			t.Fatalf("seed %d (%v): dropped background passed the tolerance band", seed, trial.metric)
		}
		if !strings.Contains(cmpErr.Error(), "background-weighted") {
			t.Errorf("seed %d (%v): want the weighted-deviation bound to fire, got: %v",
				seed, trial.metric, cmpErr)
		}
	}
}

// TestCompareHybridBackstops exercises the two gross-divergence backstops
// on synthetic cost vectors, where the weighted statistic alone would
// stay in band.
func TestCompareHybridBackstops(t *testing.T) {
	t.Parallel()
	g := topology.Arpanet()
	n := g.NumLinks()
	base := make([]float64, n)
	w := make([]float64, n)
	for l := range base {
		base[l] = 30
		w[l] = 1
	}
	clone := func(v []float64) []float64 { return append([]float64(nil), v...) }

	// Paired off-setting spikes: zero weighted-mean deviation, but more
	// out-of-band links than the cap allows.
	h, p := clone(base), clone(base)
	for l := 0; l+1 < 2*(hybridMaxOutliers+1); l += 2 {
		h[l] += 25
		p[l+1] += 25
	}
	err := compareHybrid(g, w, h, p)
	if err == nil || !strings.Contains(err.Error(), "out of band") {
		t.Errorf("outlier backstop did not fire: %v", err)
	}

	// Wholesale rerouting under the outlier cap: tripling the cost of the
	// 25 busiest links (by a uniform-demand fluid assignment) on the packet
	// side only — with their background weight zeroed so the weighted
	// deviation ignores them — stays inside both the sys band and the
	// outlier cap, but SPF routes around those trunks on one side and
	// through them on the other.
	unit := func(topology.LinkID) float64 { return 1 }
	load := flowmodel.Assign(g, traffic.Uniform(g, 1000), unit).LinkBPS
	order := make([]int, n)
	for l := range order {
		order[l] = l
	}
	sort.Slice(order, func(i, j int) bool { return load[order[i]] > load[order[j]] })
	h, p = clone(base), clone(base)
	wz := clone(w)
	for _, l := range order[:25] {
		p[l] = 90
		wz[l] = 0
	}
	err = compareHybrid(g, wz, h, p)
	if err == nil || !strings.Contains(err.Error(), "agreement") {
		t.Errorf("agreement backstop did not fire: %v", err)
	}
}
