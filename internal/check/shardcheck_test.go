package check

import (
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/topology"
)

// TestCheckShardRouting is the satellite acceptance criterion: sharded and
// unsharded adaptive runs agree — exactly where the models share code,
// within the documented tolerance where they do not — on the ARPANET map
// and a small hierarchical graph, across all three metrics (the seeds
// below cover MinHop, D-SPF and HN-SPF draws; see the skipped-draw log).
func TestCheckShardRouting(t *testing.T) {
	t.Parallel()
	n := int64(4)
	if testing.Short() {
		n = 1
	}
	metrics := map[node.MetricKind]bool{}
	for seed := int64(1); seed <= n; seed++ {
		rng := rand.New(rand.NewSource(seed))
		trial, _ := genShardTrial(rand.New(rand.NewSource(seed)))
		metrics[trial.metric] = true
		if f := CheckShardRouting(rng, seed); f != nil {
			t.Fatalf("shard differential failed (seed %d):\n%s", seed, f.Repro)
		}
	}
	if !testing.Short() && len(metrics) < 2 {
		t.Errorf("seeds 1..%d drew only %v; widen the seed range", n, metrics)
	}
}

// TestCheckShardCustody drives the custody torture: random explicit cuts,
// congestion-level load and fault scripts must leave the user and control
// custody ledgers balanced at every barrier, and the cut itself invisible.
func TestCheckShardCustody(t *testing.T) {
	t.Parallel()
	n := int64(5)
	if testing.Short() {
		n = 2
	}
	for seed := int64(1); seed <= n; seed++ {
		if f := CheckShardCustody(rand.New(rand.NewSource(seed)), seed); f != nil {
			t.Fatalf("shard custody torture failed (seed %d):\n%s", seed, f.Repro)
		}
	}
}

// TestShardDiffCalibration is the sweep behind the tolerance constants in
// shardcheck.go: it reruns the cross-model leg over many generated trials
// and reports, per metric, the worst observed deviation on each judged
// statistic. Skipped unless SHARD_CALIB=<trials> is set — rerun it (and
// refresh the measured-basis comment) whenever either engine's measurement
// or metric path changes.
//
//	SHARD_CALIB=40 go test ./internal/check -run TestShardDiffCalibration -v
func TestShardDiffCalibration(t *testing.T) {
	trials, err := strconv.Atoi(os.Getenv("SHARD_CALIB"))
	if err != nil || trials <= 0 {
		t.Skip("calibration sweep; set SHARD_CALIB=<trials> to run")
	}
	type agg struct {
		trials, maxOut         int
		maxAbs, maxSys, maxRel float64
		minAgree               float64
	}
	sums := map[node.MetricKind]*agg{}
	for seed := int64(1); seed <= int64(trials); seed++ {
		trial, ops := genShardTrial(rand.New(rand.NewSource(seed)))
		ref, err := runShardLeg(trial, ops, 1)
		if err != nil {
			t.Fatalf("seed %d shard leg: %v", seed, err)
		}
		nm, err := runNetworkLeg(trial, ops, ref.dests)
		if err != nil {
			t.Fatalf("seed %d network leg: %v", seed, err)
		}
		sm := seriesMeans(ref.series)
		a := sums[trial.metric]
		if a == nil {
			a = &agg{minAgree: 1}
			sums[trial.metric] = a
		}
		a.trials++
		var num, den float64
		out := 0
		for l := range sm {
			if d := math.Abs(sm[l] - nm[l]); d > a.maxAbs {
				a.maxAbs = d
			}
			num += sm[l] - nm[l]
			den += (sm[l] + nm[l]) / 2
			if denom := math.Max(sm[l], nm[l]); denom > 0 {
				if rel := math.Abs(sm[l]-nm[l]) / denom; rel > shardDspfRelOut {
					out++
					if rel > a.maxRel {
						a.maxRel = rel
					}
				}
			}
		}
		if den > 0 {
			if sys := math.Abs(num / den); sys > a.maxSys {
				a.maxSys = sys
			}
		}
		if out > a.maxOut {
			a.maxOut = out
		}
		if trial.metric == node.DSPF {
			if frac := nextHopAgreement(trial.g, sm, nm); frac < a.minAgree {
				a.minAgree = frac
			}
		}
		t.Logf("seed %d: %-7v %-24s faults=%d out=%d", seed, trial.metric, trial.topoName, len(ops), out)
	}
	for metric, a := range sums {
		t.Logf("%v over %d trials: max|Δmean|=%.4f maxSys=%.4f outliers<=%d maxRel=%.3f minAgree=%.3f",
			metric, a.trials, a.maxAbs, a.maxSys, a.maxOut, a.maxRel, a.minAgree)
	}
}

// TestCompareShardNetworkDetects proves each metric's comparison standard
// actually rejects divergence, on synthetic cost vectors: the differential
// must not be a tautology.
func TestCompareShardNetworkDetects(t *testing.T) {
	t.Parallel()
	g := topology.Arpanet()
	n := g.NumLinks()
	flat := func(v float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	trial := func(m node.MetricKind) shardTrial { return shardTrial{g: g, metric: m} }

	// MinHop: any difference at all is a failure.
	sm, nm := flat(1), flat(1)
	nm[3] = 1 + 1e-12
	if err := compareShardNetwork(trial(node.MinHop), sm, nm); err == nil {
		t.Error("MinHop comparison accepted unequal costs")
	}
	if err := compareShardNetwork(trial(node.MinHop), flat(1), flat(1)); err != nil {
		t.Errorf("MinHop comparison rejected equal costs: %v", err)
	}

	// HN-SPF: a single link past the per-link bound fails.
	sm, nm = flat(20), flat(20)
	nm[7] = 20 + shardHNMaxDiff + 0.1
	if err := compareShardNetwork(trial(node.HNSPF), sm, nm); err == nil {
		t.Error("HN-SPF comparison accepted an out-of-band link")
	} else if !strings.Contains(err.Error(), "HN-SPF") {
		t.Errorf("unexpected HN-SPF failure shape: %v", err)
	}

	// D-SPF: a systematic scale shift fails on the mean relative deviation.
	sm, nm = flat(30), flat(30*(1+2*shardDspfSysMax))
	if err := compareShardNetwork(trial(node.DSPF), sm, nm); err == nil {
		t.Error("D-SPF comparison accepted a systematic scale shift")
	} else if !strings.Contains(err.Error(), "relative cost deviation") {
		t.Errorf("unexpected D-SPF failure shape: %v", err)
	}

	// D-SPF: offsetting spikes dodge the systematic bound but trip the
	// outlier cap.
	sm, nm = flat(30), flat(30)
	for l := 0; l < 2*(shardDspfMaxOut+1); l += 2 {
		nm[l] *= 1 + 2*shardDspfRelOut
		nm[l+1] /= 1 + 2*shardDspfRelOut
	}
	if err := compareShardNetwork(trial(node.DSPF), sm, nm); err == nil {
		t.Error("D-SPF comparison accepted paired out-of-band spikes")
	} else if !strings.Contains(err.Error(), "relative deviation") {
		t.Errorf("unexpected outlier failure shape: %v", err)
	}
}

// TestRandPartition pins the patch-up rule: every shard non-empty, every
// assignment in range, deterministic for a fixed rng state.
func TestRandPartition(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n, shards := 5+rng.Intn(40), 2+rng.Intn(5)
		part := randPartition(rng, n, shards)
		count := make([]int, shards)
		for i, p := range part {
			if p < 0 || p >= shards {
				t.Fatalf("seed %d: node %d assigned to shard %d of %d", seed, i, p, shards)
			}
			count[p]++
		}
		for s, c := range count {
			if c == 0 {
				t.Fatalf("seed %d: shard %d owns no nodes (n=%d shards=%d)", seed, s, n, shards)
			}
		}
	}
}

// TestClampedMeanPktBits pins the shard↔network traffic conversion factor
// against a direct numeric integration of the clamped exponential.
func TestClampedMeanPktBits(t *testing.T) {
	t.Parallel()
	// E[min(max(X, lo), hi)] for X ~ Exp(mean), integrated by quadrature.
	const steps = 4_000_000
	lo, hi, mean := network.MinPktBits, network.MaxPktBits, network.MeanPktBits
	var want float64
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		x := -mean * math.Log(1-u)
		want += math.Min(math.Max(x, lo), hi)
	}
	want /= steps
	if got := network.ClampedMeanPktBits(); math.Abs(got-want) > 0.5 {
		t.Errorf("ClampedMeanPktBits() = %.3f, quadrature says %.3f", got, want)
	}
}
