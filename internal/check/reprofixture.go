package check

// Reproducer lint fixtures: checker -lint renders each ddmin-minimized
// failure as a self-contained Go source file next to its .scn/.txt
// reproducer and runs the static-analysis suite of internal/analysis over
// the output directory. The fixture replays deterministically (fixed seed
// and script imply a fixed digest), so the determinism linter can vet the
// generated artifact the same way it vets the tree — and the weekly
// workflow does exactly that over the long campaign's artifact directory.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// FixtureModule makes dir a standalone Go module (module reprofixtures)
// if it is not one already. The nested go.mod keeps the generated
// fixtures out of the repository's own "./..." builds while letting the
// analysis loader root itself there, even when dir is outside any module.
func FixtureModule(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gomod := filepath.Join(dir, "go.mod")
	if _, err := os.Stat(gomod); err == nil {
		return nil
	}
	return os.WriteFile(gomod, []byte("module reprofixtures\n\ngo 1.22\n"), 0o644)
}

// WriteLintFixture renders failure n as a Go fixture in dir and returns
// the written filename. The file opts into the deterministic rule set via
// lint:deterministic and must come out of the generator lint-clean; a
// finding in it means the generator itself drifted.
func WriteLintFixture(dir string, n int, f *Failure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%03d-%s-seed%d_repro.go", n, f.Check, f.Seed)
	var b strings.Builder
	fmt.Fprintf(&b, "// Reproducer fixture rendered by checker -lint for the %q failure\n", f.Check)
	fmt.Fprintf(&b, "// under seed %d; rerun with: checker -campaigns 1 -seed %d\n", f.Seed, f.Seed)
	b.WriteString("//\n// lint:deterministic\npackage reprofixtures\n\nimport \"math/rand\"\n\n")
	id := fmt.Sprintf("%03d", n)
	fmt.Fprintf(&b, "// Check%s identifies the failing checker.\nconst Check%s = %s\n\n",
		id, id, strconv.Quote(f.Check))
	fmt.Fprintf(&b, "// Seed%s is the campaign seed the failure reproduces under.\nconst Seed%s = int64(%d)\n\n",
		id, id, f.Seed)
	fmt.Fprintf(&b, "// Script%s is the ddmin-minimized reproducer.\nconst Script%s = %s\n\n",
		id, id, strconv.Quote(f.Repro))
	fmt.Fprintf(&b, `// Replay%s folds the script through a stream seeded from Seed%s: the
// digest is a pure function of (seed, script), which is the determinism
// contract every reproducer relies on.
func Replay%s() uint64 {
	rng := rand.New(rand.NewSource(Seed%s))
	var digest uint64
	for _, c := range []byte(Script%s) {
		digest = (digest*1099511628211 + uint64(c)) ^ uint64(rng.Int63())
	}
	return digest
}
`, id, id, id, id, id)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return name, nil
}
