package check

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/node"
	"repro/internal/queueing"
	"repro/internal/topology"
)

// metricProps is what the invariant checker knows about one module under
// test: its bounds and, when the paper imposes them, its per-update
// movement limits (§4.2/§4.3 — the HNM may move at most MaxIncrease up and
// MaxDecrease down per measurement period).
type metricProps struct {
	name             string
	floor, ceiling   float64
	maxUp, maxDown   float64 // 0 = no movement limit (D-SPF has none)
	maxSilentPeriods int     // most consecutive non-reports allowed
	build            func() node.CostModule
}

// CheckMetric runs one metric-invariant trial: every metric implementation,
// on a random line type with a random propagation delay, driven by a random
// delay trace (idle stretches, M/M/1 ramps, spikes), must keep every
// reported cost inside its Floor/Ceiling band, never change its advertised
// cost without reporting, respect its movement limits, and never stay
// silent past its forced-update horizon. On failure the delay trace is
// minimized into the reproducer.
func CheckMetric(rng *rand.Rand, seed int64) *Failure {
	lts := []topology.LineType{topology.T9_6, topology.T19_2, topology.T56, topology.S56, topology.T112}
	lt := lts[rng.Intn(len(lts))]
	prop := rng.Float64() * 0.3
	if !lt.Satellite() && rng.Intn(2) == 0 {
		prop = rng.Float64() * 0.02
	}

	var props metricProps
	switch rng.Intn(3) {
	case 0:
		p := core.DefaultParams(lt)
		m := core.NewModule(lt, prop)
		props = metricProps{
			name:  fmt.Sprintf("hnspf(%v prop=%.4f)", lt, prop),
			floor: m.Floor(), ceiling: m.Ceiling(),
			maxUp: p.MaxIncrease(), maxDown: p.MaxDecrease(),
			// The HNM suppresses sub-threshold changes indefinitely on a
			// steady line; only D-SPF forces periodic updates.
			maxSilentPeriods: 0,
			build:            func() node.CostModule { return core.NewModule(lt, prop) },
		}
	case 1:
		m := metric.NewDSPF(lt, prop)
		props = metricProps{
			name:  fmt.Sprintf("dspf(%v prop=%.4f)", lt, prop),
			floor: m.Floor(), ceiling: m.Ceiling(),
			// §2.2: the decaying significance threshold forces an update
			// within five 10-second periods, so at most four consecutive
			// calls may stay silent.
			maxSilentPeriods: 4,
			build:            func() node.CostModule { return metric.NewDSPF(lt, prop) },
		}
	default:
		props = metricProps{
			name: "minhop", floor: 1, ceiling: 1,
			maxSilentPeriods: 0,
			build:            func() node.CostModule { return metric.NewMinHop() },
		}
	}

	delays := genDelayTrace(rng, lt)
	if err := runMetricTrace(props, delays); err != nil {
		min := Minimize(delays, func(sub []float64) bool {
			return runMetricTrace(props, sub) != nil
		})
		finalErr := runMetricTraceErr(props, min)
		var b strings.Builder
		fmt.Fprintf(&b, "module: %s\n", props.name)
		for _, d := range min {
			fmt.Fprintf(&b, "delay %s\n", strconv.FormatFloat(d, 'g', -1, 64))
		}
		fmt.Fprintf(&b, "error: %v\n", finalErr)
		return &Failure{
			Check: "metric-invariant",
			Seed:  seed,
			Topo:  props.name,
			Err:   finalErr.Error(),
			Repro: b.String(),
		}
	}
	return nil
}

// genDelayTrace builds a measurement-delay sequence mixing the regimes a
// real line sees: idle periods, utilization ramps mapped through the M/M/1
// delay curve, congestion spikes, and the degenerate zero.
func genDelayTrace(rng *rand.Rand, lt topology.LineType) []float64 {
	s := queueing.ServiceTime(lt.Bandwidth())
	var delays []float64
	for len(delays) < 60+rng.Intn(120) {
		switch rng.Intn(4) {
		case 0: // idle stretch
			for i, n := 0, 1+rng.Intn(8); i < n; i++ {
				delays = append(delays, s*(1+0.1*rng.Float64()))
			}
		case 1: // ramp up then down through the M/M/1 curve
			steps := 3 + rng.Intn(8)
			peak := 0.3 + 0.69*rng.Float64()
			for i := 0; i <= steps; i++ {
				delays = append(delays, queueing.MM1Delay(s, peak*float64(i)/float64(steps)))
			}
			for i := steps; i >= 0; i-- {
				delays = append(delays, queueing.MM1Delay(s, peak*float64(i)/float64(steps)))
			}
		case 2: // spike
			delays = append(delays, s*float64(10+rng.Intn(400)))
		default: // degenerate
			delays = append(delays, 0)
		}
	}
	return delays
}

func runMetricTrace(p metricProps, delays []float64) error {
	return runMetricTraceErr(p, delays)
}

func runMetricTraceErr(p metricProps, delays []float64) error {
	m := p.build()
	prev := m.Cost()
	silent := 0
	for i, d := range delays {
		cost, report := m.Update(d)
		if cost < p.floor || cost > p.ceiling {
			return fmt.Errorf("step %d: cost %v outside [%v, %v]", i, cost, p.floor, p.ceiling)
		}
		// lint:ignore floatexact bit-exact differential oracle: Cost() must return the same stored value Update reported
		if cost != m.Cost() {
			return fmt.Errorf("step %d: Update returned %v but Cost() says %v", i, cost, m.Cost())
		}
		if !report {
			// lint:ignore floatexact bit-exact oracle: a silent step must leave the reported cost untouched, not merely close
			if cost != prev {
				return fmt.Errorf("step %d: cost moved %v -> %v without a report", i, prev, cost)
			}
			silent++
			if p.maxSilentPeriods > 0 && silent > p.maxSilentPeriods {
				return fmt.Errorf("step %d: %d consecutive periods without a report (max %d)",
					i, silent, p.maxSilentPeriods)
			}
		} else {
			// The module computes a limited cost as prev±limit, so the
			// observed movement can overshoot the limit by one ulp of the
			// operands; compare with a relative slack.
			eps := 1e-9 * math.Max(1, math.Max(math.Abs(prev), math.Abs(cost)))
			if p.maxUp > 0 && cost-prev > p.maxUp+eps {
				return fmt.Errorf("step %d: cost rose %v -> %v, over the +%v movement limit",
					i, prev, cost, p.maxUp)
			}
			if p.maxDown > 0 && prev-cost > p.maxDown+eps {
				return fmt.Errorf("step %d: cost fell %v -> %v, over the -%v movement limit",
					i, prev, cost, p.maxDown)
			}
			silent = 0
		}
		prev = cost
	}
	return nil
}
