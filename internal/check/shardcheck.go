package check

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/spf"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The sharded-adaptive differential: the same adaptive scenario — topology,
// metric, traffic, fault script — run through internal/shard and through
// the full internal/network engine must tell routing the same story.
//
// The comparison has two legs with two very different standards of proof:
//
//  1. EXACT (models share everything): the shard runner at 1, 2 and 4
//     shards must produce the identical per-link advertised-cost time
//     series, sample for sample, bit for bit, plus a byte-identical merged
//     trace. This is determinism-by-construction made observable on state
//     the trace does not record (every link's module, not just the sampled
//     nodes').
//
//  2. TOLERANCED (models share the protocol stack but not the sample
//     path): shard-vs-network runs share the cost modules, the flooding
//     protocol, the measurement formula (queueing+transmission+processing)
//     and the fault handling, but draw independent packet sample paths
//     from differently-shaped RNGs, stagger measurement instants with
//     different integer rounding (< 1 ms apart), and differ in delivery
//     timing by the 500 µs/hop processing term the shard model folds into
//     the measurement instead of the propagation. Per-link post-warmup
//     time-mean advertised costs are compared per metric:
//
//     - MinHop: the cost is identically 1 regardless of sample path, so
//     the time means must agree exactly — this pins the shared plumbing.
//     - HN-SPF at the generated light loads: the revised metric is
//     deliberately flat at its floor below ~50% utilization, and the
//     floor (MinCost + propagation term) is computed by shared code from
//     shared inputs; the means must agree to shardHNMaxDiff, which is
//     loose only around repair ease-in (Reset pins the cost at MaxCost
//     until the next measurement instant, and the two engines' instants
//     differ by sub-millisecond rounding, so a 1 Hz sample can land on
//     opposite sides of one 10 s ease-in step).
//     - D-SPF: the advertised cost IS the measured delay (plus bias), so
//     it inherits the sample-path noise; the means are judged by the
//     mean relative deviation, a per-link outlier cap, and the SPF
//     next-hop agreement the mean costs imply (the same shape as the
//     hybrid differential's backstops).
//
// Measured basis for the toleranced bounds (SHARD_CALIB=40 sweep via
// TestShardDiffCalibration: 40 seeded trials over both topologies, 0–2
// fault pairs each — 17 HN-SPF, 9 D-SPF, 14 MinHop draws): MinHop deviated
// by exactly 0; HN-SPF per-link mean difference reached at most 1.86 cost
// units, on a repaired link's ease-in edge; D-SPF mean relative deviation
// stayed within ±0.031 with at most 3 links beyond 30% relative deviation
// and next-hop agreement >= 0.901. The bounds below leave >= 2x margin on
// the scalar statistics and headroom on the counts.
const (
	shardHNMaxDiff     = 4.0  // per-link |Δmean|, HN-SPF (ease-in edge noise x2)
	shardDspfSysMax    = 0.08 // |mean relative deviation|, D-SPF
	shardDspfRelOut    = 0.30 // per-link relative deviation marking an outlier
	shardDspfMaxOut    = 8    // outlier links allowed (of 88 on ARPANET)
	shardDspfAgreeMin  = 0.85 // SPF next-hop agreement on time-mean costs
	shardSampleSeconds = 1    // advertised-cost sampling cadence, seconds
)

// shardWarmup is the cost-series cutoff: two measurement periods, so every
// node's first flood wave (always reported) and the second settling wave
// are behind the comparison window.
const shardWarmup = 2 * node.MeasurementPeriod

// shardOp is one scripted trunk fault, flat for ddmin.
type shardOp struct {
	kind  string // "down", "up"
	at    sim.Time
	trunk int
}

// shardTrial is the generated-but-fixed part of a differential trial.
type shardTrial struct {
	topoName string
	g        *topology.Graph
	metric   node.MetricKind
	pktRate  float64 // packets/second offered per node
	dests    int
	seed     int64
	duration sim.Time
}

// genShardTrial draws one trial on the ISSUE's two small topologies. Loads
// are light: HN-SPF must sit in its flat floor region (the exact-ish leg)
// and D-SPF in the linear queueing band where the engines' independent
// sample paths stay coherent.
func genShardTrial(rng *rand.Rand) (shardTrial, []shardOp) {
	trial := shardTrial{
		metric:   []node.MetricKind{node.MinHop, node.DSPF, node.HNSPF}[rng.Intn(3)],
		pktRate:  0.5 + rng.Float64(),
		dests:    3 + rng.Intn(3),
		seed:     rng.Int63(),
		duration: sim.FromSeconds(60 + 30*rng.Float64()),
	}
	if rng.Intn(2) == 0 {
		trial.topoName, trial.g = "arpanet", topology.Arpanet()
	} else {
		seed := rng.Int63n(1 << 30)
		trial.topoName = fmt.Sprintf("hier(r=4 per=8 seed=%d)", seed)
		trial.g = topology.Hierarchical(4, 8, seed)
	}
	// Fault pairs land after warmup with >= 20 s of tail so the repair's
	// ease-in has begun (not necessarily finished — the tolerance covers it).
	var ops []shardOp
	for i := rng.Intn(3); i > 0; i-- {
		window := trial.duration - shardWarmup - 20*sim.Second
		at := shardWarmup + sim.Time(rng.Int63n(int64(window)))
		tr := rng.Intn(trial.g.NumTrunks())
		ops = append(ops, shardOp{kind: "down", at: at, trunk: tr})
		up := at + sim.FromSeconds(5+10*rng.Float64())
		if up < trial.duration-15*sim.Second {
			ops = append(ops, shardOp{kind: "up", at: up, trunk: tr})
		}
	}
	return trial, ops
}

// CheckShardRouting runs one randomized sharded-vs-unsharded adaptive
// differential (both legs above). On failure the fault script is minimized
// and rendered as a .scn reproducer with the trial in comment headers.
func CheckShardRouting(rng *rand.Rand, seed int64) *Failure {
	trial, ops := genShardTrial(rng)
	err := runShardDiff(trial, ops)
	if err == nil {
		return nil
	}
	min := Minimize(ops, func(sub []shardOp) bool {
		return runShardDiff(trial, sub) != nil
	})
	finalErr := runShardDiff(trial, min)
	if finalErr == nil {
		finalErr = err
	}
	return &Failure{
		Check: "shard-differential",
		Seed:  seed,
		Topo:  trial.topoName,
		Err:   finalErr.Error(),
		Repro: renderShardRepro(trial, min, "", finalErr),
	}
}

// renderShardRepro renders a trial + fault script as a .scn with headers.
// partition is the explicit cut for custody trials ("" when default).
func renderShardRepro(t shardTrial, ops []shardOp, partition string, err error) string {
	sc := scenario.NewScenario("shard-diff", t.duration)
	for _, op := range sortedShardOps(ops) {
		a, b := trunkNames(t.g, op.trunk)
		switch op.kind {
		case "down":
			sc.DownAt(op.at, a, b)
		case "up":
			sc.UpAt(op.at, a, b)
		}
	}
	script, scErr := sc.Script()
	if scErr != nil {
		script = fmt.Sprintf("# unserializable: %v\n", scErr)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# topo: %s\n# metric: %v\n# rate: %.3f pkt/s/node x %d dests\n# cfgseed: %d\n",
		t.topoName, t.metric, t.pktRate, t.dests, t.seed)
	if partition != "" {
		fmt.Fprintf(&b, "# partition: %s\n", partition)
	}
	b.WriteString(script)
	fmt.Fprintf(&b, "# error: %v\n", err)
	return b.String()
}

func trunkNames(g *topology.Graph, trunk int) (string, string) {
	l := g.Link(topology.LinkID(2 * trunk))
	return g.Node(l.From).Name, g.Node(l.To).Name
}

func sortedShardOps(ops []shardOp) []shardOp {
	sorted := append([]shardOp(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].at < sorted[j].at })
	return sorted
}

// shardLeg is one shard-engine run's observables.
type shardLeg struct {
	series [][]float64 // [link][sample] advertised cost, sampled at 1 Hz
	trace  string
	dests  [][]topology.NodeID // by node, the drawn destination sets
}

// runShardLeg runs the shard engine at the given shard count, sampling
// every link's advertised cost once per shardSampleSeconds and auditing the
// custody ledgers along the way.
func runShardLeg(t shardTrial, ops []shardOp, shards int) (*shardLeg, error) {
	cfg := shard.Config{
		Graph:         t.g,
		Shards:        shards,
		Seed:          t.seed,
		PktRate:       t.pktRate,
		Dests:         t.dests,
		Adaptive:      true,
		Metric:        t.metric,
		MeasureSample: 8,
		TraceDrops:    true,
		Faults:        shardFaults(ops),
	}
	s, err := shard.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("shard.New: %w", err)
	}
	leg := &shardLeg{series: make([][]float64, t.g.NumLinks())}
	steps := int(t.duration / sim.Second)
	for step := 1; step <= steps; step++ {
		s.Run(sim.Time(step) * sim.Second)
		if step%shardSampleSeconds == 0 {
			for l := range leg.series {
				leg.series[l] = append(leg.series[l], s.LinkCost(topology.LinkID(l)))
			}
		}
		if step%10 == 0 {
			if err := s.Audit(); err != nil {
				return nil, fmt.Errorf("audit at %ds: %w", step, err)
			}
		}
	}
	if err := s.Audit(); err != nil {
		return nil, fmt.Errorf("final audit: %w", err)
	}
	leg.trace = s.TraceText()
	leg.dests = make([][]topology.NodeID, t.g.NumNodes())
	for id := range leg.dests {
		leg.dests[id] = s.DestsOf(topology.NodeID(id))
	}
	return leg, nil
}

func shardFaults(ops []shardOp) []shard.Fault {
	var faults []shard.Fault
	for _, op := range ops {
		faults = append(faults, shard.Fault{Trunk: op.trunk, At: op.at, Up: op.kind == "up"})
	}
	return faults
}

// runShardDiff runs both legs of the differential and returns the first
// violated property as an error.
func runShardDiff(t shardTrial, ops []shardOp) error {
	ref, err := runShardLeg(t, ops, 1)
	if err != nil {
		return fmt.Errorf("shards=1: %w", err)
	}
	// Leg 1 — exact: 2 and 4 shards reproduce the cost series and trace.
	for _, shards := range []int{2, 4} {
		leg, err := runShardLeg(t, ops, shards)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		for l := range ref.series {
			for i := range ref.series[l] {
				// lint:ignore floatexact the exact leg's whole point is bitwise equality across shard counts
				if leg.series[l][i] != ref.series[l][i] {
					a, b := t.g.Link(topology.LinkID(l)).From, t.g.Link(topology.LinkID(l)).To
					return fmt.Errorf("shards=%d: advertised cost of %s->%s diverged at sample %d: %.9g vs %.9g",
						shards, t.g.Node(a).Name, t.g.Node(b).Name, i, leg.series[l][i], ref.series[l][i])
				}
			}
		}
		if leg.trace != ref.trace {
			return fmt.Errorf("shards=%d: merged trace diverged from single-kernel run", shards)
		}
	}
	// Leg 2 — toleranced: the unsharded engine over the identical scenario.
	netMeans, err := runNetworkLeg(t, ops, ref.dests)
	if err != nil {
		return fmt.Errorf("network leg: %w", err)
	}
	return compareShardNetwork(t, seriesMeans(ref.series), netMeans)
}

// seriesMeans reduces the sampled advertised-cost series to post-warmup
// time means, one per link.
func seriesMeans(series [][]float64) []float64 {
	means := make([]float64, len(series))
	cut := int(shardWarmup / sim.Second / shardSampleSeconds)
	for l, s := range series {
		var sum float64
		for _, c := range s[cut:] {
			sum += c
		}
		means[l] = sum / float64(len(s)-cut)
	}
	return means
}

// runNetworkLeg offers the shard run's exact traffic matrix — every node
// sends pktRate packets/s of clamped-exponential size spread uniformly over
// the destination set the shard engine drew — to the full internal/network
// engine, with the fault script riding as a scenario so the conservation,
// transmitter and convergence audits run too. Returns the per-link
// post-warmup time-mean advertised cost.
func runNetworkLeg(t shardTrial, ops []shardOp, dests [][]topology.NodeID) ([]float64, error) {
	m := traffic.NewMatrix(t.g.NumNodes())
	meanBits := network.ClampedMeanPktBits()
	for id, ds := range dests {
		for _, d := range ds {
			m.Set(topology.NodeID(id), d, t.pktRate*meanBits/float64(len(ds)))
		}
	}
	sc := scenario.NewScenario("shard-diff", t.duration)
	sc.CheckEvery = 20 * sim.Second
	for _, op := range sortedShardOps(ops) {
		a, b := trunkNames(t.g, op.trunk)
		switch op.kind {
		case "down":
			sc.DownAt(op.at, a, b)
		case "up":
			sc.UpAt(op.at, a, b)
		}
	}
	series := make([]*stats.Series, t.g.NumLinks())
	cfg := scenario.Config{
		Graph:  t.g,
		Matrix: m,
		Metric: t.metric,
		Seed:   t.seed,
		Warmup: shardWarmup,
		Prepare: func(n *network.Network) {
			for l := range series {
				series[l] = n.TrackLinkCost(topology.LinkID(l))
			}
		},
	}
	res, err := scenario.Run(cfg, sc)
	if err != nil {
		return nil, err
	}
	if len(res.Violations) > 0 {
		v := res.Violations[0]
		return nil, fmt.Errorf("%s violation at %v: %s", v.Check, v.At, v.Err)
	}
	means := make([]float64, len(series))
	for l, s := range series {
		means[l] = meanAfter(s, shardWarmup.Seconds())
	}
	return means, nil
}

// compareShardNetwork judges the cross-model leg per metric (see the file
// comment for the standards and their measured basis).
func compareShardNetwork(t shardTrial, sm, nm []float64) error {
	switch t.metric {
	case node.MinHop:
		for l := range sm {
			// lint:ignore floatexact both sides are time means of the constant 1.0 — any difference is a bug
			if sm[l] != nm[l] {
				return fmt.Errorf("min-hop cost of link %d differs: shard %.9g vs network %.9g (must be exactly 1)",
					l, sm[l], nm[l])
			}
		}
		return nil
	case node.HNSPF:
		for l := range sm {
			if diff := math.Abs(sm[l] - nm[l]); diff > shardHNMaxDiff {
				lnk := t.g.Link(topology.LinkID(l))
				return fmt.Errorf("HN-SPF mean cost of %s->%s differs by %.3f (> %.1f): shard %.4f vs network %.4f",
					t.g.Node(lnk.From).Name, t.g.Node(lnk.To).Name, diff, shardHNMaxDiff, sm[l], nm[l])
			}
		}
		return nil
	default: // D-SPF
		var num, den float64
		out, worst, worstLink := 0, 0.0, topology.NoLink
		for l := range sm {
			num += sm[l] - nm[l]
			den += (sm[l] + nm[l]) / 2
			denom := math.Max(sm[l], nm[l])
			if denom <= 0 {
				continue
			}
			if rel := math.Abs(sm[l]-nm[l]) / denom; rel > shardDspfRelOut {
				out++
				if rel > worst {
					worst, worstLink = rel, topology.LinkID(l)
				}
			}
		}
		if den > 0 {
			if sys := num / den; math.Abs(sys) > shardDspfSysMax {
				return fmt.Errorf("D-SPF mean relative cost deviation %+.4f outside ±%.2f (shard vs network)",
					sys, shardDspfSysMax)
			}
		}
		if out > shardDspfMaxOut {
			lnk := t.g.Link(worstLink)
			return fmt.Errorf("%d links beyond %.0f%% relative deviation (> %d allowed); worst %s->%s at %.0f%%",
				out, 100*shardDspfRelOut, shardDspfMaxOut,
				t.g.Node(lnk.From).Name, t.g.Node(lnk.To).Name, 100*worst)
		}
		if frac := nextHopAgreement(t.g, sm, nm); frac < shardDspfAgreeMin {
			return fmt.Errorf("SPF next-hop agreement on time-mean D-SPF costs is %.3f, below %.2f",
				frac, shardDspfAgreeMin)
		}
		return nil
	}
}

// nextHopAgreement is the fraction of (source, destination) pairs whose SPF
// next hop agrees between two per-link cost vectors.
func nextHopAgreement(g *topology.Graph, sm, nm []float64) float64 {
	sc := func(l topology.LinkID) float64 { return math.Max(sm[l], 1e-9) }
	nc := func(l topology.LinkID) float64 { return math.Max(nm[l], 1e-9) }
	agree, total := 0, 0
	for s := 0; s < g.NumNodes(); s++ {
		src := topology.NodeID(s)
		st := spf.Compute(g, src, sc)
		nt := spf.Compute(g, src, nc)
		for d := 0; d < g.NumNodes(); d++ {
			if d == s {
				continue
			}
			total++
			if st.NextHop(topology.NodeID(d)) == nt.NextHop(topology.NodeID(d)) {
				agree++
			}
		}
	}
	return float64(agree) / float64(total)
}

// --- custody torture --------------------------------------------------------

// CheckShardCustody is the update-packet custody torture test: a random
// small topology, a random explicit shard cut (not the partitioner's — a
// striped or fully random assignment cuts low-latency intra-region trunks
// the greedy partitioner never would, driving the barrier with 1-tick
// lookaheads), adaptive routing under a random metric, and a random fault
// script. The composed custody ledgers — user AND control identities — and
// the wire/transmitter audits must hold at every 1 s barrier. Violations
// ddmin to a runnable .scn with the partition in a header.
func CheckShardCustody(rng *rand.Rand, seed int64) *Failure {
	regions, per := 2+rng.Intn(3), 4+rng.Intn(5)
	topoSeed := rng.Int63n(1 << 30)
	trial := shardTrial{
		topoName: fmt.Sprintf("hier(r=%d per=%d seed=%d)", regions, per, topoSeed),
		g:        topology.Hierarchical(regions, per, topoSeed),
		metric:   []node.MetricKind{node.MinHop, node.DSPF, node.HNSPF}[rng.Intn(3)],
		pktRate:  5 + 95*rng.Float64(), // congestion welcome: drops must stay booked
		dests:    2 + rng.Intn(4),
		seed:     rng.Int63(),
		duration: sim.FromSeconds(6 + 6*rng.Float64()),
	}
	shards := 2 + rng.Intn(3)
	part := randPartition(rng, trial.g.NumNodes(), shards)
	queueLimit := []int{0, 2, 8}[rng.Intn(3)]

	nOps := 2 + rng.Intn(6)
	var ops []shardOp
	for len(ops) < nOps {
		at := sim.Second + sim.Time(rng.Int63n(int64(trial.duration*3/4)))
		tr := rng.Intn(trial.g.NumTrunks())
		if rng.Intn(3) == 0 {
			ops = append(ops, shardOp{kind: "up", at: at, trunk: tr})
		} else {
			ops = append(ops, shardOp{kind: "down", at: at, trunk: tr})
		}
	}

	runOnce := func(sub []shardOp) error {
		return runShardCustody(trial, sub, shards, part, queueLimit)
	}
	err := runOnce(ops)
	if err == nil {
		return nil
	}
	min := Minimize(ops, func(sub []shardOp) bool { return runOnce(sub) != nil })
	finalErr := runOnce(min)
	if finalErr == nil {
		finalErr = err
	}
	return &Failure{
		Check: "shard-custody",
		Seed:  seed,
		Topo:  trial.topoName,
		Err:   finalErr.Error(),
		Repro: renderShardRepro(trial, min, partitionString(part), finalErr),
	}
}

// randPartition draws a uniformly random node→shard map, patched so every
// shard owns at least one node (steal the lowest-ID nodes deterministically).
func randPartition(rng *rand.Rand, n, shards int) []int {
	part := make([]int, n)
	for i := range part {
		part[i] = rng.Intn(shards)
	}
	count := make([]int, shards)
	for _, p := range part {
		count[p]++
	}
	next := 0
	for s, c := range count {
		if c > 0 {
			continue
		}
		for ; next < n; next++ {
			if count[part[next]] > 1 {
				count[part[next]]--
				part[next] = s
				count[s]++
				next++
				break
			}
		}
	}
	return part
}

func partitionString(part []int) string {
	var b strings.Builder
	for i, p := range part {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	return b.String()
}

// runShardCustody runs one adaptive sharded simulation over an explicit cut
// with barrier-by-barrier audits, and cross-checks every observable against
// the canonical single-shard run (an explicit partition must be invisible).
func runShardCustody(t shardTrial, ops []shardOp, shards int, part []int, queueLimit int) error {
	cfg := shard.Config{
		Graph:         t.g,
		Shards:        shards,
		Seed:          t.seed,
		PktRate:       t.pktRate,
		Dests:         t.dests,
		QueueLimit:    queueLimit,
		Adaptive:      true,
		Metric:        t.metric,
		MeasurePeriod: 2 * sim.Second, // several flood waves inside the short run
		MeasureSample: 4,
		TraceDrops:    true,
		Partition:     part,
		Faults:        shardFaults(ops),
	}
	s, err := shard.New(cfg)
	if err != nil {
		return fmt.Errorf("shard.New: %w", err)
	}
	steps := int(t.duration / sim.Second)
	for step := 1; step <= steps; step++ {
		s.Run(sim.Time(step) * sim.Second)
		if err := s.Audit(); err != nil {
			return fmt.Errorf("audit at %ds (shards=%d cut): %w", step, shards, err)
		}
	}
	report := s.Report()
	if !report.Conservation.Balanced() {
		return fmt.Errorf("composed user ledger unbalanced: %+v", report.Conservation)
	}

	ref := cfg
	ref.Shards = 1
	ref.Partition = nil
	r, err := shard.New(ref)
	if err != nil {
		return fmt.Errorf("shard.New (reference): %w", err)
	}
	r.Run(t.duration / sim.Second * sim.Second)
	if err := r.Audit(); err != nil {
		return fmt.Errorf("reference audit: %w", err)
	}
	if got, want := s.TraceText(), r.TraceText(); got != want {
		return fmt.Errorf("random cut changed the merged trace (shards=%d)", shards)
	}
	if got, want := report.String(), r.Report().String(); got != want {
		return fmt.Errorf("random cut changed the report:\n%s\nwant:\n%s", got, want)
	}
	return nil
}
