package check

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCampaignsPass is the in-tree slice of what cmd/checker runs in CI:
// every campaign over a seed range must pass every pillar.
func TestCampaignsPass(t *testing.T) {
	t.Parallel()
	n := 20
	if testing.Short() {
		n = 5
	}
	for _, r := range Run(Options{Campaigns: n, Seed: 1}) {
		for _, f := range r.Failures {
			t.Errorf("campaign seed=%d:\n%s", r.Seed, f.Repro)
		}
	}
}

// TestCampaignDeterminism runs the same seed range twice with different
// worker counts: the per-campaign logs must be byte-identical, which is
// what makes a CI failure reproducible from its seed alone.
func TestCampaignDeterminism(t *testing.T) {
	t.Parallel()
	n := 12
	if testing.Short() {
		n = 4
	}
	a := Run(Options{Campaigns: n, Seed: 400, Workers: 1})
	b := Run(Options{Campaigns: n, Seed: 400, Workers: 8})
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Log != b[i].Log {
			t.Errorf("campaign %d differs between worker counts:\n  %s\n  %s", i, a[i].Log, b[i].Log)
		}
		if a[i].Seed != 400+int64(i) {
			t.Errorf("campaign %d has seed %d, want %d", i, a[i].Seed, 400+int64(i))
		}
	}
}

// TestCheckFloodCleanAndDeterministic: the reliable flood delivers under
// drops and partitions, and a trial replays identically from its seed.
func TestCheckFlood(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 8; seed++ {
		if f := CheckFlood(rand.New(rand.NewSource(seed)), seed); f != nil {
			t.Fatalf("flood check failed:\n%s", f.Repro)
		}
	}
}

func TestCheckMetric(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 20; seed++ {
		if f := CheckMetric(rand.New(rand.NewSource(seed)), seed); f != nil {
			t.Fatalf("metric check failed:\n%s", f.Repro)
		}
	}
}

func TestCheckScenario(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("scenario trials are the slow pillar")
	}
	for seed := int64(0); seed < 4; seed++ {
		if f := CheckScenario(rand.New(rand.NewSource(seed)), seed); f != nil {
			t.Fatalf("scenario check failed:\n%s", f.Repro)
		}
	}
}

// TestGenTopology: everything the generator emits is a valid connected
// graph, and the same rng state regenerates the same topology.
func TestGenTopology(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 50; seed++ {
		topo := GenTopology(rand.New(rand.NewSource(seed)), 30)
		if err := topo.G.Validate(); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, topo.Desc, err)
		}
		if !topo.G.Connected() {
			t.Fatalf("seed %d (%s): disconnected", seed, topo.Desc)
		}
		again := GenTopology(rand.New(rand.NewSource(seed)), 30)
		if again.Desc != topo.Desc || again.G.NumLinks() != topo.G.NumLinks() {
			t.Fatalf("seed %d not deterministic: %s vs %s", seed, topo.Desc, again.Desc)
		}
	}
}

// TestFailureString keeps the one-line rendering stable for CI logs.
func TestFailureString(t *testing.T) {
	t.Parallel()
	f := &Failure{Check: "spf-differential", Seed: 7, Topo: "ring(n=5)", Err: "boom"}
	s := f.String()
	for _, want := range []string{"spf-differential", "seed=7", "ring(n=5)", "boom"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Failure.String() = %q, missing %q", s, want)
		}
	}
}
