package equilibrium

import (
	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/queueing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// MetricMap converts link utilization into a reported cost in hops (the
// link's cost divided by the ambient one-hop cost) — Figures 4 and 5 in
// normalized form.
type MetricMap func(utilization float64) float64

// HNSPFMap returns the normalized HN-SPF metric map for a line type and
// configured propagation delay. The divisor is one hop: the idle cost of a
// zero-propagation terrestrial line of the same speed (30 units for
// 56 kb/s).
func HNSPFMap(lt topology.LineType, propDelay float64) MetricMap {
	m := core.NewModule(lt, propDelay)
	hop := core.DefaultParams(lt).MinCost
	return func(u float64) float64 { return m.RawCost(u) / hop }
}

// DSPFMap returns the normalized D-SPF metric map: M/M/1 delay at the
// utilization, in units of the line's idle (bias) cost — Figure 4's
// normalization ("2 units ... the delay metric's bias value for a 56 kb/s
// line").
func DSPFMap(lt topology.LineType, propDelay float64) MetricMap {
	d := metric.NewDSPF(lt, propDelay)
	s := queueing.ServiceTime(lt.Bandwidth())
	idle := metric.NewDSPF(lt, 0).Bias() // one hop = idle zero-prop line
	return func(u float64) float64 { return d.RawCost(s, u) / idle }
}

// MinHopMap is the static metric: always one hop.
func MinHopMap() MetricMap { return func(float64) float64 { return 1 } }

// MetricSeries samples a metric map over utilization [0, uMax] for the
// Figure 4/5 plots.
func MetricSeries(name string, m MetricMap, uMax, step float64) *stats.Series {
	s := stats.NewSeries(name)
	for u := 0.0; u <= uMax+1e-9; u += step {
		s.Add(u, m(u))
	}
	return s
}

// Equilibrium solves the §5.3 fixed point for the average link: the
// reported cost w at which the cost the metric computes from the resulting
// utilization equals w. offered is the utilization the link would see
// under min-hop routing (1.0 = exactly full when carrying its base
// traffic); the utilization at cost w is offered × Response(w), capped at
// 1.
//
// Both maps are monotone (response non-increasing, metric non-decreasing),
// so g(w) = metric(util(w)) − w is non-increasing and bisection finds the
// crossing. Returns the equilibrium cost (hops) and utilization.
func (mo *Model) Equilibrium(m MetricMap, offered float64) (cost, utilization float64) {
	util := func(w float64) float64 {
		u := offered * mo.Response(w)
		if u > 1 {
			u = 1
		}
		return u
	}
	g := func(w float64) float64 { return m(util(w)) - w }

	lo, hi := 1.0, mo.MaxShedCost()+2
	if g(lo) <= 0 {
		// The metric is satisfied at ambient cost (light load).
		return lo, util(lo)
	}
	if g(hi) >= 0 {
		// Even shedding everything cannot bring the cost down (the metric
		// saturates): the equilibrium is the metric's cap.
		return m(util(hi)), util(hi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if g(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	w := (lo + hi) / 2
	return w, util(w)
}

// EquilibriumSweep computes equilibrium utilization across offered loads —
// Figure 10's curves. The returned series maps offered load (min-hop
// utilization) to equilibrium utilization.
func (mo *Model) EquilibriumSweep(name string, m MetricMap, maxOffered, step float64) *stats.Series {
	s := stats.NewSeries(name)
	for f := step; f <= maxOffered+1e-9; f += step {
		_, u := mo.Equilibrium(m, f)
		s.Add(f, u)
	}
	return s
}

// CobwebOptions control the dynamic-behaviour iteration of §5.4.
type CobwebOptions struct {
	// Averaging applies the HNM's .5/.5 recursive filter to utilization.
	Averaging bool
	// LimitUp/LimitDown bound the per-period cost movement in hops
	// (0 = unlimited, as with D-SPF).
	LimitUp, LimitDown float64
}

// CobwebPoint is one period of the dynamic iteration.
type CobwebPoint struct {
	Period      int
	Cost        float64 // reported cost at the start of the period, hops
	Utilization float64 // resulting link utilization
}

// Cobweb traces the dynamic behaviour of Figures 11 and 12: starting from
// reported cost w0, each period maps cost → traffic (response map) →
// utilization → next reported cost (metric map), with optional averaging
// and movement limits. The trace has steps+1 points.
func (mo *Model) Cobweb(m MetricMap, offered, w0 float64, steps int, opt CobwebOptions) []CobwebPoint {
	if steps < 0 {
		panic("equilibrium: negative steps")
	}
	trace := make([]CobwebPoint, 0, steps+1)
	w := w0
	avg := 0.0
	first := true
	for i := 0; i <= steps; i++ {
		u := offered * mo.Response(w)
		if u > 1 {
			u = 1
		}
		trace = append(trace, CobwebPoint{Period: i, Cost: w, Utilization: u})
		est := u
		if opt.Averaging {
			if first {
				avg = u
				first = false
			} else {
				avg = 0.5*u + 0.5*avg
			}
			est = avg
		}
		next := m(est)
		if opt.LimitUp > 0 && next > w+opt.LimitUp {
			next = w + opt.LimitUp
		}
		if opt.LimitDown > 0 && next < w-opt.LimitDown {
			next = w - opt.LimitDown
		}
		w = next
	}
	return trace
}

// Amplitude returns the peak-to-peak swing of the cost over the last half
// of a cobweb trace — the oscillation amplitude after transients.
func Amplitude(trace []CobwebPoint) float64 {
	if len(trace) == 0 {
		return 0
	}
	lo, hi := trace[len(trace)/2].Cost, trace[len(trace)/2].Cost
	for _, p := range trace[len(trace)/2:] {
		if p.Cost < lo {
			lo = p.Cost
		}
		if p.Cost > hi {
			hi = p.Cost
		}
	}
	return hi - lo
}
