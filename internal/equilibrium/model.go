// Package equilibrium implements the paper's §5 analysis of SPF behaviour:
// the per-link shed-cost statistics (Figure 7), the Network Response Map of
// the "average link" (Figure 8), the metric maps (Figures 4 and 5), the
// fixed-point equilibrium of reported cost and traffic (Figures 9 and 10),
// and the cobweb dynamic-behaviour iteration (Figures 11 and 12).
//
// The model follows §5.1 exactly: all links except the one under
// consideration report the same ambient value (one "hop"); for each
// source-destination route we compute the reported cost (in hops) at which
// the route moves off the link, with ties always broken in favor of using
// the link. Aggregating over all links gives the average link's response.
//
// The build fans out over links: each directed link's thresholds depend
// only on shortest paths with that one link priced out, so links are
// embarrassingly parallel. A bounded worker pool (default GOMAXPROCS,
// see WithWorkers) processes links off a shared counter; every worker owns
// one spf.Workspace and writes only its link's routes/base slots, so the
// result is identical — bit for bit — to a sequential build.
package equilibrium

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/spf"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Model holds the per-route shed thresholds for every link of a network.
type Model struct {
	g *topology.Graph
	m *traffic.Matrix

	// For each directed link, the routes that use it at ambient cost:
	// (shed threshold w* in hops, route length in hops, traffic in bps),
	// sorted by ascending threshold.
	routes [][]routeStat

	// base traffic per link at ambient cost (bps).
	base []float64

	// Prefix-sum response tables: one per link plus the all-links
	// aggregate, so response queries bisect instead of rescanning routes.
	tables   []responseTable
	allTable responseTable
	allBase  float64
}

type routeStat struct {
	shedAt float64 // largest cost (hops) at which the route still uses the link
	length int     // route length (hops) through the link at ambient cost
	rate   float64 // bps
}

// Option configures the model build.
type Option func(*config)

type config struct {
	workers int
}

// WithWorkers sets the number of goroutines the build fans the per-link
// computations over. The default is GOMAXPROCS; 1 forces a fully
// sequential build. The result does not depend on the worker count.
func WithWorkers(n int) Option {
	if n < 1 {
		panic("equilibrium: workers must be at least 1")
	}
	return func(c *config) { c.workers = n }
}

// New builds the model for a topology and traffic matrix. For every
// directed link L = (u,v) it computes hop distances on the graph without L
// and derives, per source-destination pair, the threshold
//
//	w* = d(s,t | ¬L) − d(s,u | ¬L) − d(v,t | ¬L)
//
// — the largest cost of L (in hops) at which the s→t route still crosses L
// (ties in favor of L). Pairs with w* < 1 never use the link.
func New(g *topology.Graph, m *traffic.Matrix, opts ...Option) *Model {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if m.NumNodes() != g.NumNodes() {
		panic("equilibrium: matrix size mismatch")
	}
	cfg := config{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	nl := g.NumLinks()
	mod := &Model{
		g:      g,
		m:      m,
		routes: make([][]routeStat, nl),
		base:   make([]float64, nl),
		tables: make([]responseTable, nl),
	}

	workers := cfg.workers
	if workers > nl {
		workers = nl
	}
	if workers < 1 {
		workers = 1
	}
	// Workers claim links off a shared counter. Each worker writes only
	// routes[li], base[li] and tables[li] for the links it claimed — the
	// slots are disjoint, so no synchronization beyond the WaitGroup is
	// needed and the outcome matches a sequential build exactly.
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicked.Store(p)
				}
			}()
			b := newLinkBuilder(g, m)
			for {
				li := int(next.Add(1)) - 1
				if li >= nl {
					return
				}
				routes, base := b.build(topology.LinkID(li))
				mod.routes[li] = routes
				mod.base[li] = base
				mod.tables[li] = newResponseTable(routes)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}

	// Aggregate table for the average-link response: concatenating every
	// link's routes in link order keeps the build order — and hence the
	// floating-point sums — independent of the worker count.
	total := 0
	for _, rs := range mod.routes {
		total += len(rs)
	}
	all := make([]routeStat, 0, total)
	for _, rs := range mod.routes {
		all = append(all, rs...)
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].shedAt < all[b].shedAt })
	mod.allTable = newResponseTable(all)
	for _, b := range mod.base {
		mod.allBase += b
	}
	return mod
}

// linkBuilder is one worker's scratch state: a reusable SPF workspace, the
// cost vector (all ambient except the link under consideration) and the
// d(v,t | ¬L) row saved from the link head's shortest-path tree.
type linkBuilder struct {
	g     *topology.Graph
	m     *traffic.Matrix
	ws    *spf.Workspace
	costs []float64 // 1 everywhere except costs[current link] = huge
	fromV []float64 // cleaned d(v, t | ¬L) per destination
	huge  float64
}

func newLinkBuilder(g *topology.Graph, m *traffic.Matrix) *linkBuilder {
	b := &linkBuilder{
		g:     g,
		m:     m,
		ws:    spf.NewWorkspace(),
		costs: make([]float64, g.NumLinks()),
		fromV: make([]float64, g.NumNodes()),
		// spf.Compute rejects infinite costs, so link removal is emulated
		// with a cost larger than any simple path; clean() maps distances
		// that had to cross the link back to +Inf.
		huge: float64(10 * g.NumNodes()),
	}
	for i := range b.costs {
		b.costs[i] = 1
	}
	return b
}

// build computes one link's route thresholds and base traffic. The routes
// come out in (source, destination) order, then sorted by threshold — the
// same order for any worker assignment.
func (b *linkBuilder) build(lid topology.LinkID) ([]routeStat, float64) {
	g, n := b.g, b.g.NumNodes()
	link := g.Link(lid)
	b.costs[lid] = b.huge
	defer func() { b.costs[lid] = 1 }()
	costFn := func(l topology.LinkID) float64 { return b.costs[l] }

	// d(v, t | ¬L) for every destination, from one tree rooted at the
	// link's head. The tree lives in the shared workspace, so the row is
	// copied out before the per-source trees overwrite it.
	tv := spf.ComputeInto(b.ws, g, link.To, costFn)
	for t := 0; t < n; t++ {
		b.fromV[t] = clean(tv.Dist(topology.NodeID(t)), b.huge)
	}

	var routes []routeStat
	var base float64
	for s := 0; s < n; s++ {
		ts := spf.ComputeInto(b.ws, g, topology.NodeID(s), costFn)
		toU := clean(ts.Dist(link.From), b.huge) // d(s, u | ¬L)
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			rate := b.m.Rate(topology.NodeID(s), topology.NodeID(t))
			if rate <= 0 {
				continue
			}
			dst := clean(ts.Dist(topology.NodeID(t)), b.huge)
			a := toU + b.fromV[t]
			if math.IsInf(dst, 1) && math.IsInf(a, 1) {
				continue
			}
			wstar := dst - a
			if wstar < 1 {
				continue // never uses the link
			}
			routes = append(routes, routeStat{
				shedAt: wstar,
				length: int(a) + 1,
				rate:   rate,
			})
			base += rate
		}
	}
	sort.SliceStable(routes, func(a, b int) bool { return routes[a].shedAt < routes[b].shedAt })
	return routes, base
}

// clean converts path lengths that had to route over the "removed" link
// back to +Inf.
func clean(d, huge float64) float64 {
	if d >= huge {
		return math.Inf(1)
	}
	return d
}

// responseTable answers "traffic remaining at reported cost w" queries in
// O(log R) over a threshold-sorted route set. A route with threshold w*
// contributes its full rate while w ≤ w*, rate·(w*+1−w) while w* < w <
// w*+1, and nothing beyond — so the remaining traffic is
//
//	Σ_{w* ≥ w} rate  +  Σ_{w−1 < w* < w} rate·(w*+1−w)
//
// Both sums are contiguous runs of the sorted thresholds; prefix sums of
// rate and rate·w* turn each into two lookups around a binary search.
type responseTable struct {
	shed     []float64 // sorted thresholds
	rateCum  []float64 // rateCum[i] = Σ rate[0:i], length len(shed)+1
	rshedCum []float64 // rshedCum[i] = Σ (rate·shedAt)[0:i]
}

func newResponseTable(routes []routeStat) responseTable {
	t := responseTable{
		shed:     make([]float64, len(routes)),
		rateCum:  make([]float64, len(routes)+1),
		rshedCum: make([]float64, len(routes)+1),
	}
	for i, r := range routes {
		t.shed[i] = r.shedAt
		t.rateCum[i+1] = t.rateCum[i] + r.rate
		t.rshedCum[i+1] = t.rshedCum[i] + r.rate*r.shedAt
	}
	return t
}

// remain returns the absolute traffic (bps) still on the link at cost w.
func (t *responseTable) remain(w float64) float64 {
	n := len(t.shed)
	// Routes in [i1, i2) are in the partial band w−1 < w* < w; routes from
	// i2 on keep their full rate.
	i1 := sort.Search(n, func(i int) bool { return t.shed[i] > w-1 })
	i2 := sort.Search(n, func(i int) bool { return t.shed[i] >= w })
	full := t.rateCum[n] - t.rateCum[i2]
	partial := (t.rshedCum[i2] - t.rshedCum[i1]) + (1-w)*(t.rateCum[i2]-t.rateCum[i1])
	return full + partial
}

// ShedStat is one row of Figure 7: for routes of a given length, the
// reported cost (hops) needed to shed them.
type ShedStat struct {
	RouteLength int
	Mean        float64
	StdDev      float64
	Min         float64
	Max         float64
	Count       int64
}

// ShedCosts aggregates, per route length, the reported cost needed to shed
// each route (w* + 1: the first integer cost at which the route leaves,
// given ties favor the link) — Figure 7. Lengths with no routes are
// omitted; results are sorted by length.
func (mo *Model) ShedCosts() []ShedStat {
	byLen := map[int]*stats.Welford{}
	for _, rs := range mo.routes {
		for _, r := range rs {
			w := byLen[r.length]
			if w == nil {
				w = &stats.Welford{}
				byLen[r.length] = w
			}
			w.Add(r.shedAt + 1)
		}
	}
	lengths := make([]int, 0, len(byLen))
	for l := range byLen {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	out := make([]ShedStat, 0, len(lengths))
	for _, l := range lengths {
		w := byLen[l]
		out = append(out, ShedStat{
			RouteLength: l,
			Mean:        w.Mean(),
			StdDev:      w.StdDev(),
			Min:         w.Min(),
			Max:         w.Max(),
			Count:       w.N(),
		})
	}
	return out
}

// MeanShedCost returns the average reported cost needed to shed a route,
// over all routes of all links (the paper: "The average reported cost
// needed to shed all routes is four hops").
func (mo *Model) MeanShedCost() float64 {
	var w stats.Welford
	for _, rs := range mo.routes {
		for _, r := range rs {
			w.Add(r.shedAt + 1)
		}
	}
	return w.Mean()
}

// Response returns the Network Response Map (Figure 8): the traffic
// remaining on the average link when it reports cost w (in hops),
// normalized so the ambient-cost traffic is 1.
//
// A single link's response is a staircase: a route with threshold w* stays
// through cost w* (ties in favor) and is gone at w*+1. Individual links
// differ from the "average link" (§5.2), so the aggregate curve the paper
// plots is smooth; we model that by shedding each route linearly between
// w* and w*+1, which matches the staircase at every integer and half-
// integer point of Figure 8 (Response(1.5) is exactly midway between "all
// ties kept at cost 1" and "all ties lost at cost 2") and keeps the map
// continuous so the §5.3 fixed point is well-defined.
func (mo *Model) Response(w float64) float64 {
	if mo.allBase == 0 {
		return 0
	}
	return mo.allTable.remain(w) / mo.allBase
}

// ResponseSeries samples the response map over [1, wMax] at the given
// step, for plotting.
func (mo *Model) ResponseSeries(wMax, step float64) *stats.Series {
	s := stats.NewSeries("network response")
	for w := 1.0; w <= wMax+1e-9; w += step {
		s.Add(w, mo.Response(w))
	}
	return s
}

// LinkResponse is Response restricted to one link: the fraction of ITS
// base traffic it keeps at reported cost w. §5.2: "The characteristics of
// individual links differ from the 'average' link"; this exposes that
// spread. Links with no base traffic return 0.
func (mo *Model) LinkResponse(l topology.LinkID, w float64) float64 {
	if mo.base[l] == 0 {
		return 0
	}
	return mo.tables[l].remain(w) / mo.base[l]
}

// ResponseSpread returns the per-link spread of the response at cost w:
// mean, standard deviation, min and max of LinkResponse over links that
// carry base traffic.
func (mo *Model) ResponseSpread(w float64) stats.Welford {
	var agg stats.Welford
	for l := range mo.routes {
		if mo.base[l] > 0 {
			agg.Add(mo.LinkResponse(topology.LinkID(l), w))
		}
	}
	return agg
}

// MaxShedCost returns the largest shed threshold over all routes — the
// cost beyond which the average link is guaranteed bare ("if a link
// reports more than eight hops, then it will shed all of its routes").
func (mo *Model) MaxShedCost() float64 {
	if n := len(mo.allTable.shed); n > 0 {
		return mo.allTable.shed[n-1]
	}
	return 0
}

// BaseTraffic returns the ambient-cost traffic of link l in bps.
func (mo *Model) BaseTraffic(l topology.LinkID) float64 { return mo.base[l] }

// MeanBaseTraffic returns the ambient-cost traffic of the average link.
func (mo *Model) MeanBaseTraffic() float64 {
	return mo.allBase / float64(len(mo.base))
}
