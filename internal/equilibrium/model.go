// Package equilibrium implements the paper's §5 analysis of SPF behaviour:
// the per-link shed-cost statistics (Figure 7), the Network Response Map of
// the "average link" (Figure 8), the metric maps (Figures 4 and 5), the
// fixed-point equilibrium of reported cost and traffic (Figures 9 and 10),
// and the cobweb dynamic-behaviour iteration (Figures 11 and 12).
//
// The model follows §5.1 exactly: all links except the one under
// consideration report the same ambient value (one "hop"); for each
// source-destination route we compute the reported cost (in hops) at which
// the route moves off the link, with ties always broken in favor of using
// the link. Aggregating over all links gives the average link's response.
package equilibrium

import (
	"math"
	"sort"

	"repro/internal/spf"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Model holds the per-route shed thresholds for every link of a network.
type Model struct {
	g *topology.Graph
	m *traffic.Matrix

	// For each directed link, the routes that use it at ambient cost:
	// (shed threshold w* in hops, route length in hops, traffic in bps).
	routes [][]routeStat

	// base traffic per link at ambient cost (bps).
	base []float64
}

type routeStat struct {
	shedAt float64 // largest cost (hops) at which the route still uses the link
	length int     // route length (hops) through the link at ambient cost
	rate   float64 // bps
}

// New builds the model for a topology and traffic matrix. For every
// directed link L = (u,v) it computes hop distances on the graph without L
// and derives, per source-destination pair, the threshold
//
//	w* = d(s,t | ¬L) − d(s,u | ¬L) − d(v,t | ¬L)
//
// — the largest cost of L (in hops) at which the s→t route still crosses L
// (ties in favor of L). Pairs with w* < 1 never use the link.
func New(g *topology.Graph, m *traffic.Matrix) *Model {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if m.NumNodes() != g.NumNodes() {
		panic("equilibrium: matrix size mismatch")
	}
	mod := &Model{
		g:      g,
		m:      m,
		routes: make([][]routeStat, g.NumLinks()),
		base:   make([]float64, g.NumLinks()),
	}
	n := g.NumNodes()
	for li := 0; li < g.NumLinks(); li++ {
		lid := topology.LinkID(li)
		link := g.Link(lid)
		// Hop distances avoiding the directed link L. spf.Compute rejects
		// infinite costs, so removal is emulated with a cost larger than
		// any simple path; clean() maps such distances back to +Inf.
		huge := float64(10 * n)
		avoidCost := func(other topology.LinkID) float64 {
			if other == lid {
				return huge
			}
			return 1
		}
		// Distances from every source with L removed: one Dijkstra per
		// source is fine at ARPANET scale.
		distFrom := make([]*spf.Tree, n)
		for s := 0; s < n; s++ {
			distFrom[s] = spf.Compute(g, topology.NodeID(s), avoidCost)
		}
		toU := make([]float64, n) // d(s, u | ¬L)
		for s := 0; s < n; s++ {
			toU[s] = clean(distFrom[s].Dist(link.From), huge)
		}
		fromV := distFrom[link.To] // d(v, t | ¬L)

		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if s == t {
					continue
				}
				rate := m.Rate(topology.NodeID(s), topology.NodeID(t))
				if rate <= 0 {
					continue
				}
				dst := clean(distFrom[s].Dist(topology.NodeID(t)), huge)
				a := toU[s] + clean(fromV.Dist(topology.NodeID(t)), huge)
				if math.IsInf(dst, 1) && math.IsInf(a, 1) {
					continue
				}
				wstar := dst - a
				if wstar < 1 {
					continue // never uses the link
				}
				mod.routes[li] = append(mod.routes[li], routeStat{
					shedAt: wstar,
					length: int(a) + 1,
					rate:   rate,
				})
				mod.base[li] += rate
			}
		}
		sort.Slice(mod.routes[li], func(a, b int) bool {
			return mod.routes[li][a].shedAt < mod.routes[li][b].shedAt
		})
	}
	return mod
}

// clean converts path lengths that had to route over the "removed" link
// back to +Inf.
func clean(d, huge float64) float64 {
	if d >= huge {
		return math.Inf(1)
	}
	return d
}

// ShedStat is one row of Figure 7: for routes of a given length, the
// reported cost (hops) needed to shed them.
type ShedStat struct {
	RouteLength int
	Mean        float64
	StdDev      float64
	Min         float64
	Max         float64
	Count       int64
}

// ShedCosts aggregates, per route length, the reported cost needed to shed
// each route (w* + 1: the first integer cost at which the route leaves,
// given ties favor the link) — Figure 7. Lengths with no routes are
// omitted; results are sorted by length.
func (mo *Model) ShedCosts() []ShedStat {
	byLen := map[int]*stats.Welford{}
	for _, rs := range mo.routes {
		for _, r := range rs {
			w := byLen[r.length]
			if w == nil {
				w = &stats.Welford{}
				byLen[r.length] = w
			}
			w.Add(r.shedAt + 1)
		}
	}
	lengths := make([]int, 0, len(byLen))
	for l := range byLen {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	out := make([]ShedStat, 0, len(lengths))
	for _, l := range lengths {
		w := byLen[l]
		out = append(out, ShedStat{
			RouteLength: l,
			Mean:        w.Mean(),
			StdDev:      w.StdDev(),
			Min:         w.Min(),
			Max:         w.Max(),
			Count:       w.N(),
		})
	}
	return out
}

// MeanShedCost returns the average reported cost needed to shed a route,
// over all routes of all links (the paper: "The average reported cost
// needed to shed all routes is four hops").
func (mo *Model) MeanShedCost() float64 {
	var w stats.Welford
	for _, rs := range mo.routes {
		for _, r := range rs {
			w.Add(r.shedAt + 1)
		}
	}
	return w.Mean()
}

// Response returns the Network Response Map (Figure 8): the traffic
// remaining on the average link when it reports cost w (in hops),
// normalized so the ambient-cost traffic is 1.
//
// A single link's response is a staircase: a route with threshold w* stays
// through cost w* (ties in favor) and is gone at w*+1. Individual links
// differ from the "average link" (§5.2), so the aggregate curve the paper
// plots is smooth; we model that by shedding each route linearly between
// w* and w*+1, which matches the staircase at every integer and half-
// integer point of Figure 8 (Response(1.5) is exactly midway between "all
// ties kept at cost 1" and "all ties lost at cost 2") and keeps the map
// continuous so the §5.3 fixed point is well-defined.
func (mo *Model) Response(w float64) float64 {
	var remain, base float64
	for li, rs := range mo.routes {
		base += mo.base[li]
		for _, r := range rs {
			keep := r.shedAt + 1 - w
			if keep >= 1 {
				remain += r.rate
			} else if keep > 0 {
				remain += r.rate * keep
			}
		}
	}
	if base == 0 {
		return 0
	}
	return remain / base
}

// ResponseSeries samples the response map over [1, wMax] at the given
// step, for plotting.
func (mo *Model) ResponseSeries(wMax, step float64) *stats.Series {
	s := stats.NewSeries("network response")
	for w := 1.0; w <= wMax+1e-9; w += step {
		s.Add(w, mo.Response(w))
	}
	return s
}

// LinkResponse is Response restricted to one link: the fraction of ITS
// base traffic it keeps at reported cost w. §5.2: "The characteristics of
// individual links differ from the 'average' link"; this exposes that
// spread. Links with no base traffic return 0.
func (mo *Model) LinkResponse(l topology.LinkID, w float64) float64 {
	if mo.base[l] == 0 {
		return 0
	}
	var remain float64
	for _, r := range mo.routes[l] {
		keep := r.shedAt + 1 - w
		if keep >= 1 {
			remain += r.rate
		} else if keep > 0 {
			remain += r.rate * keep
		}
	}
	return remain / mo.base[l]
}

// ResponseSpread returns the per-link spread of the response at cost w:
// mean, standard deviation, min and max of LinkResponse over links that
// carry base traffic.
func (mo *Model) ResponseSpread(w float64) stats.Welford {
	var agg stats.Welford
	for l := range mo.routes {
		if mo.base[l] > 0 {
			agg.Add(mo.LinkResponse(topology.LinkID(l), w))
		}
	}
	return agg
}

// MaxShedCost returns the largest shed threshold over all routes — the
// cost beyond which the average link is guaranteed bare ("if a link
// reports more than eight hops, then it will shed all of its routes").
func (mo *Model) MaxShedCost() float64 {
	max := 0.0
	for _, rs := range mo.routes {
		for _, r := range rs {
			if r.shedAt > max {
				max = r.shedAt
			}
		}
	}
	return max
}

// BaseTraffic returns the ambient-cost traffic of link l in bps.
func (mo *Model) BaseTraffic(l topology.LinkID) float64 { return mo.base[l] }

// MeanBaseTraffic returns the ambient-cost traffic of the average link.
func (mo *Model) MeanBaseTraffic() float64 {
	sum := 0.0
	for _, b := range mo.base {
		sum += b
	}
	return sum / float64(len(mo.base))
}
