package equilibrium

import (
	"math"
	"testing"

	"repro/internal/topology"
	"repro/internal/traffic"
)

func arpanetModel() *Model {
	g := topology.Arpanet()
	m := traffic.Gravity(g, topology.ArpanetWeights(), 400000)
	return New(g, m)
}

var cachedModel *Model

func model() *Model {
	if cachedModel == nil {
		cachedModel = arpanetModel()
	}
	return cachedModel
}

func TestResponseMapShape(t *testing.T) {
	mo := model()
	// Normalized: ambient cost traffic is 1.
	if r := mo.Response(1); math.Abs(r-1) > 1e-9 {
		t.Errorf("Response(1) = %v, want 1", r)
	}
	// Monotone non-increasing.
	prev := 2.0
	for w := 1.0; w <= 10; w += 0.25 {
		r := mo.Response(w)
		if r > prev+1e-12 {
			t.Errorf("response map not monotone at w=%v", w)
		}
		prev = r
	}
	// §5.2: "If the link reports a cost of 4, then over 90% of its base
	// traffic will be shed." Exact value is topology-dependent; the shape
	// requirement is that most traffic is gone by 4 hops.
	r4 := mo.Response(4)
	t.Logf("Response(4) = %.3f", r4)
	if r4 > 0.35 {
		t.Errorf("Response(4) = %.3f, want most traffic shed by cost 4", r4)
	}
	// Epsilon problem (§5.2): a small change around ambient sheds a lot.
	drop := mo.Response(1) - mo.Response(1.5)
	t.Logf("Response(1) - Response(1.5) = %.3f", drop)
	if drop < 0.15 {
		t.Errorf("tie-flip should shed a large fraction, got %.3f", drop)
	}
	// Beyond the max shed cost the link is bare.
	if r := mo.Response(mo.MaxShedCost() + 1); r != 0 {
		t.Errorf("Response beyond max shed cost = %v, want 0", r)
	}
}

func TestShedCostStats(t *testing.T) {
	mo := model()
	sheds := mo.ShedCosts()
	if len(sheds) == 0 {
		t.Fatal("no shed statistics")
	}
	// Figure 7's shape: short routes need large costs to shed; long routes
	// shed with slightly-longer alternates. Mean shed cost must decrease
	// (weakly) from 1-hop routes to the longest routes.
	first, last := sheds[0], sheds[len(sheds)-1]
	t.Logf("shed stats: %+v ... %+v, overall mean %.2f, max %.1f",
		first, last, mo.MeanShedCost(), mo.MaxShedCost())
	if first.RouteLength != 1 {
		t.Errorf("shortest route length = %d, want 1", first.RouteLength)
	}
	if first.Mean <= last.Mean {
		t.Errorf("1-hop routes (mean shed %.2f) should be stickier than %d-hop routes (%.2f)",
			first.Mean, last.RouteLength, last.Mean)
	}
	// "in the case of a one-hop route, the maximum reported cost needed to
	// shed the route is eight hops" — ours should be in the same regime
	// (alternate paths only a few hops longer).
	if first.Max < 4 || first.Max > 12 {
		t.Errorf("max shed cost for 1-hop routes = %.1f, want ~8 (4-12)", first.Max)
	}
	// "The average reported cost needed to shed all routes is four hops."
	if m := mo.MeanShedCost(); m < 2 || m > 6 {
		t.Errorf("mean shed cost = %.2f, want ~4 (2-6)", m)
	}
	for _, s := range sheds {
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Errorf("inconsistent stats at length %d: %+v", s.RouteLength, s)
		}
		if s.Count <= 0 {
			t.Errorf("empty bucket emitted: %+v", s)
		}
	}
}

func TestMetricMaps(t *testing.T) {
	hn := HNSPFMap(topology.T56, 0)
	d := DSPFMap(topology.T56, 0)
	mh := MinHopMap()

	// Idle: every map reports one hop.
	if math.Abs(hn(0)-1) > 1e-9 || math.Abs(d(0)-1) > 1e-9 || mh(0) != 1 {
		t.Errorf("idle costs = %v, %v, %v; want 1 each", hn(0), d(0), mh(0))
	}
	// HN-SPF is capped at 3 hops; D-SPF reaches 20 (Figure 4's contrast).
	if got := hn(0.99); math.Abs(got-3) > 1e-9 {
		t.Errorf("HN-SPF cap = %v hops, want 3", got)
	}
	if got := d(0.99); math.Abs(got-20) > 1e-6 {
		t.Errorf("D-SPF cap = %v hops, want 20", got)
	}
	// At 75%: D-SPF 4 hops, HN-SPF 2 (§5.2's worked example).
	if got := d(0.75); math.Abs(got-4) > 1e-9 {
		t.Errorf("D-SPF at 75%% = %v, want 4", got)
	}
	if got := hn(0.75); math.Abs(got-2) > 0.3 {
		t.Errorf("HN-SPF at 75%% = %v, want ~2", got)
	}
	// Min-hop never moves.
	if mh(0.999) != 1 {
		t.Error("min-hop map must be constant")
	}
}

func TestMetricSeriesSampling(t *testing.T) {
	s := MetricSeries("hn", HNSPFMap(topology.T56, 0), 0.9, 0.1)
	if s.Len() != 10 {
		t.Errorf("series length = %d, want 10", s.Len())
	}
	if s.Y[0] != 1 {
		t.Errorf("first sample = %v, want 1", s.Y[0])
	}
}

func TestEquilibriumLightLoad(t *testing.T) {
	mo := model()
	// At low offered load HN-SPF and min-hop sit at ambient cost with
	// utilization = offered ("HN-SPF ... acts like min-hop until the link
	// utilization exceeds 50%").
	for _, m := range []MetricMap{HNSPFMap(topology.T56, 0), MinHopMap()} {
		cost, u := mo.Equilibrium(m, 0.2)
		if math.Abs(cost-1) > 0.05 {
			t.Errorf("light-load equilibrium cost = %v, want 1", cost)
		}
		if math.Abs(u-0.2) > 0.02 {
			t.Errorf("light-load equilibrium utilization = %v, want 0.2", u)
		}
	}
	// D-SPF reports above ambient as soon as there is any queueing, so it
	// loses tie-break routes even at light load (the epsilon problem,
	// §5.2) — slightly below ideal but in the same regime.
	cost, u := mo.Equilibrium(DSPFMap(topology.T56, 0), 0.2)
	t.Logf("light-load D-SPF equilibrium: cost %.3f, util %.3f", cost, u)
	if cost < 1 || cost > 1.6 {
		t.Errorf("light-load D-SPF cost = %v, want slightly above 1", cost)
	}
	if u < 0.1 || u > 0.21 {
		t.Errorf("light-load D-SPF utilization = %v, want in (0.1, 0.2]", u)
	}
}

func TestEquilibriumOrderingFigure10(t *testing.T) {
	mo := model()
	hn := HNSPFMap(topology.T56, 0)
	d := DSPFMap(topology.T56, 0)
	for _, f := range []float64{0.8, 1.0, 1.5, 2.0, 3.0} {
		_, uh := mo.Equilibrium(hn, f)
		_, ud := mo.Equilibrium(d, f)
		um := f
		if um > 1 {
			um = 1
		}
		t.Logf("offered %.1f: min-hop %.3f, HN-SPF %.3f, D-SPF %.3f", f, um, uh, ud)
		// Figure 10: HN-SPF sustains higher utilization than D-SPF,
		// especially under high loads, and lies between min-hop and D-SPF.
		if uh < ud-1e-6 {
			t.Errorf("offered %.1f: HN-SPF utilization %.3f below D-SPF %.3f", f, uh, ud)
		}
		if uh > um+1e-6 {
			t.Errorf("offered %.1f: HN-SPF utilization %.3f above min-hop %.3f", f, uh, um)
		}
	}
	// The gap must be substantial under overload.
	_, uh := mo.Equilibrium(hn, 2.0)
	_, ud := mo.Equilibrium(d, 2.0)
	if uh-ud < 0.1 {
		t.Errorf("overload gap HN-SPF %.3f vs D-SPF %.3f too small", uh, ud)
	}
}

func TestEquilibriumSweepMonotone(t *testing.T) {
	mo := model()
	s := mo.EquilibriumSweep("hn", HNSPFMap(topology.T56, 0), 3.0, 0.25)
	if s.Len() != 12 {
		t.Fatalf("sweep length = %d", s.Len())
	}
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] < s.Y[i-1]-0.02 {
			t.Errorf("equilibrium utilization should not fall as load rises (at %v)", s.X[i])
		}
	}
}

func TestCobwebDSPFMetaStable(t *testing.T) {
	mo := model()
	d := DSPFMap(topology.T56, 0)
	eqCost, _ := mo.Equilibrium(d, 1.0)

	// Figure 11: starting at the equilibrium point stays at it...
	near := mo.Cobweb(d, 1.0, eqCost, 40, CobwebOptions{})
	nearAmp := Amplitude(near)
	// ...while starting far away oscillates between extremes.
	far := mo.Cobweb(d, 1.0, 8, 40, CobwebOptions{})
	farAmp := Amplitude(far)
	t.Logf("D-SPF cobweb: near-equilibrium amplitude %.2f, perturbed %.2f", nearAmp, farAmp)
	if farAmp < 2 {
		t.Errorf("perturbed D-SPF should oscillate widely, amplitude %.2f", farAmp)
	}
	if farAmp < 3*nearAmp && nearAmp > 0.5 {
		t.Errorf("perturbation should matter: near %.2f vs far %.2f", nearAmp, farAmp)
	}
}

func TestCobwebHNSPFBounded(t *testing.T) {
	mo := model()
	hn := HNSPFMap(topology.T56, 0)
	opts := CobwebOptions{Averaging: true, LimitUp: 17.0 / 30, LimitDown: 15.0 / 30}

	// Figure 12: HN-SPF oscillates around equilibrium with bounded
	// amplitude even from a bad start.
	trace := mo.Cobweb(hn, 1.0, 3, 60, opts)
	amp := Amplitude(trace)
	d := DSPFMap(topology.T56, 0)
	dAmp := Amplitude(mo.Cobweb(d, 1.0, 8, 60, CobwebOptions{}))
	t.Logf("HN-SPF amplitude %.2f vs D-SPF %.2f", amp, dAmp)
	if amp > 1.2 {
		t.Errorf("HN-SPF oscillation amplitude %.2f exceeds ~2 movement limits", amp)
	}
	if amp >= dAmp {
		t.Errorf("HN-SPF amplitude %.2f should be below D-SPF's %.2f", amp, dAmp)
	}
	// Costs stay within the metric's [1, 3] range.
	for _, p := range trace {
		if p.Cost < 1-1e-9 || p.Cost > 3+1e-9 {
			t.Errorf("cost %v outside [1,3] at period %d", p.Cost, p.Period)
		}
	}
}

func TestCobwebEaseIn(t *testing.T) {
	// Figure 12's "easing in a new link": starting at max cost under light
	// load, the cost walks down by at most LimitDown per period.
	mo := model()
	hn := HNSPFMap(topology.T56, 0)
	opts := CobwebOptions{Averaging: true, LimitUp: 17.0 / 30, LimitDown: 15.0 / 30}
	trace := mo.Cobweb(hn, 0.3, 3, 20, opts)
	for i := 1; i < len(trace); i++ {
		fall := trace[i-1].Cost - trace[i].Cost
		if fall > opts.LimitDown+1e-9 {
			t.Errorf("period %d: cost fell %.3f, limit %.3f", i, fall, opts.LimitDown)
		}
	}
	if final := trace[len(trace)-1].Cost; math.Abs(final-1) > 0.2 {
		t.Errorf("final eased-in cost = %.2f, want ~1", final)
	}
}

func TestCobwebPanics(t *testing.T) {
	mo := model()
	defer func() {
		if recover() == nil {
			t.Error("negative steps should panic")
		}
	}()
	mo.Cobweb(MinHopMap(), 1, 1, -1, CobwebOptions{})
}

func TestModelValidation(t *testing.T) {
	g := topology.Ring(4, topology.T56)
	defer func() {
		if recover() == nil {
			t.Error("matrix mismatch should panic")
		}
	}()
	New(g, traffic.NewMatrix(7))
}

func TestResponseSeries(t *testing.T) {
	mo := model()
	s := mo.ResponseSeries(5, 0.5)
	if s.Len() != 9 {
		t.Errorf("series length = %d, want 9", s.Len())
	}
	if math.Abs(s.Y[0]-1) > 1e-9 {
		t.Errorf("first point = %v, want 1", s.Y[0])
	}
}

func TestBaseTraffic(t *testing.T) {
	mo := model()
	if mo.MeanBaseTraffic() <= 0 {
		t.Error("mean base traffic should be positive")
	}
	any := false
	for l := 0; l < mo.g.NumLinks(); l++ {
		if mo.BaseTraffic(topology.LinkID(l)) > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no link carries base traffic")
	}
}

func TestLinkResponse(t *testing.T) {
	mo := model()
	// Every loaded link keeps all its traffic at ambient cost.
	for l := 0; l < mo.g.NumLinks(); l++ {
		lid := topology.LinkID(l)
		if mo.BaseTraffic(lid) == 0 {
			if mo.LinkResponse(lid, 1) != 0 {
				t.Fatalf("link %d has no base traffic but nonzero response", l)
			}
			continue
		}
		if r := mo.LinkResponse(lid, 1); math.Abs(r-1) > 1e-9 {
			t.Errorf("link %d Response(1) = %v, want 1", l, r)
		}
		// Monotone per link too.
		prev := 2.0
		for w := 1.0; w <= 9; w += 0.5 {
			r := mo.LinkResponse(lid, w)
			if r > prev+1e-12 {
				t.Fatalf("link %d response not monotone at w=%v", l, w)
			}
			prev = r
		}
	}
}

func TestResponseSpread(t *testing.T) {
	mo := model()
	// §5.2: individual links differ from the average link. At cost 2 the
	// per-link responses should show real dispersion.
	spread := mo.ResponseSpread(2)
	t.Logf("per-link response at cost 2: %v", &spread)
	if spread.N() == 0 {
		t.Fatal("no loaded links")
	}
	if spread.StdDev() < 0.05 {
		t.Errorf("per-link spread %.3f suspiciously small — all links identical?", spread.StdDev())
	}
	// The mean of per-link responses is in the same regime as the
	// traffic-weighted average map (they weight links differently).
	if d := math.Abs(spread.Mean() - mo.Response(2)); d > 0.25 {
		t.Errorf("per-link mean %.3f far from aggregate response %.3f", spread.Mean(), mo.Response(2))
	}
}
