package equilibrium

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestParallelBuildDeterminism: New with workers=N must produce results
// deeply equal to workers=1 — routes, base traffic, response tables, shed
// statistics and response samples — on both reference topologies. The
// worker pool only partitions the per-link work; it must not influence any
// output bit.
func TestParallelBuildDeterminism(t *testing.T) {
	cases := []struct {
		name    string
		g       *topology.Graph
		weights map[string]float64
	}{
		{"arpanet1987", topology.Arpanet(), topology.ArpanetWeights()},
		{"milnet", topology.Milnet(), topology.MilnetWeights()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := traffic.Gravity(tc.g, tc.weights, 400000)
			seq := New(tc.g, m, WithWorkers(1))
			for _, workers := range []int{2, 8} {
				par := New(tc.g, m, WithWorkers(workers))
				if !reflect.DeepEqual(seq.routes, par.routes) {
					t.Fatalf("workers=%d: routes differ from sequential build", workers)
				}
				if !reflect.DeepEqual(seq.base, par.base) {
					t.Fatalf("workers=%d: base traffic differs", workers)
				}
				if !reflect.DeepEqual(seq.tables, par.tables) {
					t.Fatalf("workers=%d: per-link response tables differ", workers)
				}
				if !reflect.DeepEqual(seq.allTable, par.allTable) {
					t.Fatalf("workers=%d: aggregate response table differs", workers)
				}
				if !reflect.DeepEqual(seq.ShedCosts(), par.ShedCosts()) {
					t.Fatalf("workers=%d: shed statistics differ", workers)
				}
				for w := 1.0; w <= 9; w += 0.125 {
					if rs, rp := seq.Response(w), par.Response(w); rs != rp {
						t.Fatalf("workers=%d: Response(%v) = %v vs %v", workers, w, rp, rs)
					}
				}
			}
		})
	}
}

// naiveRemain replicates the pre-table route scan: the reference the
// prefix-sum tables must reproduce.
func naiveRemain(routes []routeStat, w float64) float64 {
	var remain float64
	for _, r := range routes {
		keep := r.shedAt + 1 - w
		if keep >= 1 {
			remain += r.rate
		} else if keep > 0 {
			remain += r.rate * keep
		}
	}
	return remain
}

// TestResponseTablesMatchScan checks the O(log R) tables against the
// original O(R) scan at many costs — including the integer and
// half-integer points Figure 8 is read at and the exact threshold values
// where the binary-search boundaries sit.
func TestResponseTablesMatchScan(t *testing.T) {
	mo := model()
	costs := []float64{1, 1.25, 1.5, 2, 2.5, 3, 3.5, 4, 5, 6, 7, 8, 9, 10}
	for _, rs := range mo.routes {
		for _, r := range rs[:min(len(rs), 3)] {
			costs = append(costs, r.shedAt, r.shedAt+1, r.shedAt+0.5)
		}
	}
	for li := range mo.routes {
		for _, w := range costs {
			want := naiveRemain(mo.routes[li], w)
			got := mo.tables[li].remain(w)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("link %d remain(%v) = %v, want %v", li, w, got, want)
			}
		}
	}
	// Aggregate map against a scan over every link's routes.
	for _, w := range costs {
		var want, base float64
		for li := range mo.routes {
			want += naiveRemain(mo.routes[li], w)
			base += mo.base[li]
		}
		want /= base
		if got := mo.Response(w); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Response(%v) = %v, want %v", w, got, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestWithWorkersPanics: a non-positive worker count is a programming
// error.
func TestWithWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithWorkers(0) should panic")
		}
	}()
	WithWorkers(0)
}
