package equilibrium

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// BenchmarkModelNew isolates the §5 model build (one Dijkstra per link and
// source) so its cost is tracked independently of the figure pipelines.
func BenchmarkModelNew(b *testing.B) {
	g := topology.Arpanet()
	m := traffic.Gravity(g, topology.ArpanetWeights(), 400000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mo := New(g, m)
		if mo.MeanBaseTraffic() <= 0 {
			b.Fatal("empty model")
		}
	}
}

// BenchmarkModelNewSerial pins the build to one worker — the baseline the
// parallel build is compared against.
func BenchmarkModelNewSerial(b *testing.B) {
	g := topology.Arpanet()
	m := traffic.Gravity(g, topology.ArpanetWeights(), 400000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mo := New(g, m, WithWorkers(1))
		if mo.MeanBaseTraffic() <= 0 {
			b.Fatal("empty model")
		}
	}
}

// BenchmarkResponse measures one Network Response Map query.
func BenchmarkResponse(b *testing.B) {
	mo := model()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := mo.Response(1 + float64(i%70)/10); r < 0 {
			b.Fatal("negative response")
		}
	}
}
