package flowmodel

import (
	"math"
	"testing"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// diamond builds A-B-D / A-C-D with the link IDs needed by the fluid tests.
func diamond(t *testing.T) (g *topology.Graph, ab, ac, bd, cd topology.LinkID) {
	t.Helper()
	g = topology.New()
	a, b := g.AddNode("A"), g.AddNode("B")
	c, d := g.AddNode("C"), g.AddNode("D")
	ab, _ = g.AddTrunk(a, b, topology.T56)
	ac, _ = g.AddTrunk(a, c, topology.T56)
	bd, _ = g.AddTrunk(b, d, topology.T56)
	cd, _ = g.AddTrunk(c, d, topology.T56)
	return g, ab, ac, bd, cd
}

func TestFluidReassignFollowsCosts(t *testing.T) {
	g, ab, ac, bd, cd := diamond(t)
	m := traffic.NewMatrix(4)
	m.Set(0, 3, 10000) // A -> D
	f := NewFluid(g, m)
	if f.LinkBPS(ab) != 0 || f.Reassigns() != 0 {
		t.Fatal("rates must be zero before the first Reassign")
	}

	// B path cheap: traffic takes A-B-D.
	cost := func(l topology.LinkID) float64 {
		if l == ac || l == g.Link(ac).Reverse() {
			return 10
		}
		return 1
	}
	f.Reassign(cost, nil)
	if f.LinkBPS(ab) != 10000 || f.LinkBPS(bd) != 10000 {
		t.Errorf("want 10000 bps on A-B-D, got ab=%v bd=%v", f.LinkBPS(ab), f.LinkBPS(bd))
	}
	if f.LinkBPS(ac) != 0 || f.LinkBPS(cd) != 0 {
		t.Errorf("C path should be idle, got ac=%v cd=%v", f.LinkBPS(ac), f.LinkBPS(cd))
	}

	// Costs flip: the next epoch moves the whole flow to A-C-D.
	f.Reassign(func(l topology.LinkID) float64 {
		if l == ab || l == g.Link(ab).Reverse() {
			return 10
		}
		return 1
	}, nil)
	if f.LinkBPS(ac) != 10000 || f.LinkBPS(cd) != 10000 {
		t.Errorf("want 10000 bps on A-C-D after the cost flip, got ac=%v cd=%v",
			f.LinkBPS(ac), f.LinkBPS(cd))
	}
	if f.LinkBPS(ab) != 0 {
		t.Errorf("B path should drain after the flip, got %v", f.LinkBPS(ab))
	}
	if f.Reassigns() != 2 {
		t.Errorf("Reassigns = %d, want 2", f.Reassigns())
	}
}

func TestFluidReroutesAroundDownLink(t *testing.T) {
	g, ab, ac, bd, cd := diamond(t)
	m := traffic.NewMatrix(4)
	m.Set(0, 3, 10000)
	f := NewFluid(g, m)
	f.Reassign(unit, nil) // ties break somewhere; force the interesting case below

	// A-B down: all demand must route via C, none unroutable.
	isDown := func(l topology.LinkID) bool {
		return l == ab || l == g.Link(ab).Reverse()
	}
	f.Reassign(unit, isDown)
	if f.LinkBPS(ac) != 10000 || f.LinkBPS(cd) != 10000 {
		t.Errorf("want reroute via C, got ac=%v cd=%v", f.LinkBPS(ac), f.LinkBPS(cd))
	}
	if f.LinkBPS(ab) != 0 || f.LinkBPS(bd) != 0 {
		t.Errorf("dead path must carry nothing, got ab=%v bd=%v", f.LinkBPS(ab), f.LinkBPS(bd))
	}
	if f.Unroutable() != 0 {
		t.Errorf("Unroutable = %v, want 0 (an alive path exists)", f.Unroutable())
	}

	// Both A exits down: the demand is unroutable, no link carries it.
	f.Reassign(unit, func(l topology.LinkID) bool {
		return l == ab || l == g.Link(ab).Reverse() || l == ac || l == g.Link(ac).Reverse()
	})
	if f.Unroutable() != 10000 {
		t.Errorf("Unroutable = %v, want 10000", f.Unroutable())
	}
	for i := 0; i < g.NumLinks(); i++ {
		if f.LinkBPS(topology.LinkID(i)) != 0 {
			t.Errorf("link %d carries %v bps of unroutable demand", i, f.LinkBPS(topology.LinkID(i)))
		}
	}
}

func TestFluidScaleImmediateRoutesLazy(t *testing.T) {
	g, ab, _, bd, _ := diamond(t)
	m := traffic.NewMatrix(4)
	m.Set(0, 3, 10000)
	f := NewFluid(g, m)
	cheapB := func(l topology.LinkID) float64 {
		if l == ab || l == g.Link(ab).Reverse() || l == bd || l == g.Link(bd).Reverse() {
			return 1
		}
		return 10
	}
	f.Reassign(cheapB, nil)

	// The surge doubles the load on the *current* routes immediately.
	f.Scale(2)
	if f.LinkBPS(ab) != 20000 || f.LinkBPS(bd) != 20000 {
		t.Errorf("Scale must be immediate: ab=%v bd=%v, want 20000", f.LinkBPS(ab), f.LinkBPS(bd))
	}
	if f.TotalBPS() != 20000 {
		t.Errorf("TotalBPS = %v, want 20000", f.TotalBPS())
	}
	// And it persists across the next epoch's rerouting.
	f.Reassign(cheapB, nil)
	if f.LinkBPS(ab) != 20000 {
		t.Errorf("scale must persist across Reassign, got %v", f.LinkBPS(ab))
	}

	// SetMatrix forgets the surge, like network.SetMatrix rebuilding sources.
	m2 := traffic.NewMatrix(4)
	m2.Set(0, 3, 5000)
	f.SetMatrix(m2)
	if f.TotalBPS() != 5000 {
		t.Errorf("TotalBPS after SetMatrix = %v, want 5000", f.TotalBPS())
	}
	f.Reassign(cheapB, nil)
	if f.LinkBPS(ab) != 5000 {
		t.Errorf("post-SetMatrix rate = %v, want 5000", f.LinkBPS(ab))
	}
}

func TestFluidDeterministic(t *testing.T) {
	g := topology.Arpanet()
	m := traffic.Gravity(g, topology.ArpanetWeights(), 500000)
	run := func() []float64 {
		f := NewFluid(g, m)
		f.Reassign(unit, nil)
		f.Scale(1.5)
		f.Reassign(unit, func(l topology.LinkID) bool { return l == 3 || l == g.Link(3).Reverse() })
		out := make([]float64, g.NumLinks())
		for i := range out {
			out[i] = f.LinkBPS(topology.LinkID(i))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		// lint:ignore floatexact determinism check: identical runs must agree bit-for-bit
		if a[i] != b[i] {
			t.Fatalf("link %d: %v vs %v — fluid reassignment is not deterministic", i, a[i], b[i])
		}
	}
}

func TestFluidPanics(t *testing.T) {
	g := topology.Ring(3, topology.T56)
	if !panics(func() { NewFluid(g, traffic.NewMatrix(5)) }) {
		t.Error("matrix mismatch should panic")
	}
	f := NewFluid(g, traffic.NewMatrix(3))
	if !panics(func() { f.Scale(0) }) {
		t.Error("Scale(0) should panic")
	}
	if !panics(func() { f.Scale(math.Inf(1)) }) {
		t.Error("Scale(+Inf) should panic")
	}
	if !panics(func() { f.SetMatrix(traffic.NewMatrix(4)) }) {
		t.Error("SetMatrix size mismatch should panic")
	}
}

func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return
}

// BenchmarkAssign measures the full-matrix routing pass on the ARPANET
// gravity matrix. The workspace-reusing assignInto (one spf.Workspace
// across all roots, parent-walk accumulation instead of per-flow path
// slices) cut this from 2,833 allocs/op and ~266µs to 11 allocs/op and
// ~66µs on the recording host.
func BenchmarkAssign(b *testing.B) {
	g := topology.Arpanet()
	m := traffic.Gravity(g, topology.ArpanetWeights(), 500000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Assign(g, m, unit)
	}
}

// BenchmarkFluidReassign measures one background epoch on the ARPANET:
// the per-epoch cost the hybrid engine pays instead of scheduling
// background packets. 0 allocs/op after the first call.
func BenchmarkFluidReassign(b *testing.B) {
	g := topology.Arpanet()
	m := traffic.Gravity(g, topology.ArpanetWeights(), 500000)
	f := NewFluid(g, m)
	f.Reassign(unit, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Reassign(unit, nil)
	}
}
