// Package flowmodel is the fluid (flow-level) companion to the
// packet-level simulator: it assigns a traffic matrix to single-path SPF
// routes under a given set of link costs, accumulates per-link
// utilizations, and predicts average path delay from the M/M/1 model plus
// propagation. The §5 equilibrium analysis reasons about one "average
// link"; this model evaluates a *specific* cost assignment on the whole
// network — the tool for questions like "what would the network-wide delay
// be if every link reported its floor cost?", and the analytic cross-check
// for the simulator's measurements.
package flowmodel

import (
	"math"

	"repro/internal/queueing"
	"repro/internal/spf"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Assignment is the result of routing a matrix over a topology with fixed
// link costs.
type Assignment struct {
	g *topology.Graph

	// LinkBPS is the traffic assigned to each link in bits/second.
	LinkBPS []float64

	// Weighted path statistics over all source-destination flows.
	HopMean     float64
	DelayMean   float64 // seconds, one-way, M/M/1 + propagation
	Unreachable float64 // bps of demand with no route
	saturated   bool
}

// Assign routes every matrix entry on the SPF shortest path under cost and
// returns the resulting assignment. Costs must be positive and finite.
func Assign(g *topology.Graph, m *traffic.Matrix, cost spf.CostFunc) *Assignment {
	if m.NumNodes() != g.NumNodes() {
		panic("flowmodel: matrix size mismatch")
	}
	a := &Assignment{g: g, LinkBPS: make([]float64, g.NumLinks())}
	var ws spf.Workspace
	weight := assignInto(&ws, a.LinkBPS, &a.Unreachable, g, m, 1, cost, math.Inf(1))
	// The rate-weighted path sums collapse onto the per-link loads by
	// exchanging the order of summation: Σ_flows rate·|path| = Σ_links
	// load(l), and Σ_flows rate·Σ_{l∈path} delay(l) = Σ_links load(l)·delay(l).
	// No per-flow path storage is needed.
	var hops, delay float64
	for l, bps := range a.LinkBPS {
		if bps == 0 {
			continue
		}
		hops += bps
		delay += bps * a.LinkDelay(topology.LinkID(l))
	}
	if weight > 0 {
		a.HopMean = hops / weight
		a.DelayMean = delay / weight
	}
	return a
}

// assignInto routes m (scaled by scale) over SPF trees under cost into the
// per-link accumulator linkBPS, reusing ws across roots so the routing pass
// is allocation-free after warmup. Demand whose shortest path costs maxDist
// or more (no route at all, or only a route through a penalized dead link)
// is added to unroutable instead. Returns the total routed rate.
func assignInto(ws *spf.Workspace, linkBPS []float64, unroutable *float64,
	g *topology.Graph, m *traffic.Matrix, scale float64, cost spf.CostFunc, maxDist float64) float64 {
	var weight float64
	for s := 0; s < g.NumNodes(); s++ {
		src := topology.NodeID(s)
		tree := spf.ComputeInto(ws, g, src, cost)
		for d := 0; d < g.NumNodes(); d++ {
			dst := topology.NodeID(d)
			rate := m.Rate(src, dst) * scale
			if rate <= 0 {
				continue
			}
			if tree.Dist(dst) >= maxDist {
				*unroutable += rate
				continue
			}
			for l := tree.Parent(dst); l != topology.NoLink; l = tree.Parent(g.Link(l).From) {
				linkBPS[l] += rate
			}
			weight += rate
		}
	}
	return weight
}

// Utilization returns a link's assigned utilization (may exceed 1 when the
// assignment oversubscribes it).
func (a *Assignment) Utilization(l topology.LinkID) float64 {
	return a.LinkBPS[l] / a.g.Link(l).Type.Bandwidth()
}

// LinkDelay returns the predicted one-way delay of a link in seconds:
// M/M/1 queueing+transmission at the assigned utilization (capped at 99%
// so oversubscription yields a large finite number) plus propagation.
func (a *Assignment) LinkDelay(l topology.LinkID) float64 {
	lnk := a.g.Link(l)
	rho := a.Utilization(l)
	if rho > 0.99 {
		rho = 0.99
		a.saturated = true
	}
	return queueing.MM1Delay(queueing.ServiceTime(lnk.Type.Bandwidth()), rho) + lnk.PropDelay
}

// Saturated reports whether any link was driven past 99% utilization (the
// delay prediction is then a lower bound — a real network would drop).
func (a *Assignment) Saturated() bool {
	// LinkDelay sets the flag lazily; make sure every link was looked at.
	for l := range a.LinkBPS {
		a.LinkDelay(topology.LinkID(l))
	}
	return a.saturated
}

// MaxUtilization returns the highest link utilization in the assignment.
func (a *Assignment) MaxUtilization() float64 {
	max := 0.0
	for l := range a.LinkBPS {
		if u := a.Utilization(topology.LinkID(l)); u > max {
			max = u
		}
	}
	return max
}

// UtilizationStats returns mean/max statistics over all links.
func (a *Assignment) UtilizationStats() stats.Welford {
	var w stats.Welford
	for l := range a.LinkBPS {
		w.Add(a.Utilization(topology.LinkID(l)))
	}
	return w
}

// FloorCosts returns the cost function of an idle network under a metric's
// floor costs — what every link advertises when unloaded. metricFloor maps
// a link to its floor cost.
func FloorCosts(g *topology.Graph, metricFloor func(topology.Link) float64) spf.CostFunc {
	costs := make([]float64, g.NumLinks())
	for i, l := range g.Links() {
		c := metricFloor(l)
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			panic("flowmodel: floor cost must be positive and finite")
		}
		costs[i] = c
	}
	return func(l topology.LinkID) float64 { return costs[l] }
}
