package flowmodel

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/queueing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func unit(topology.LinkID) float64 { return 1 }

func TestAssignLine(t *testing.T) {
	g := topology.Line(3, topology.T56)
	m := traffic.NewMatrix(3)
	m.Set(0, 2, 28000) // half a 56k trunk, crossing both links
	a := Assign(g, m, unit)

	l01, _ := g.FindTrunk(0, 1)
	l12, _ := g.FindTrunk(1, 2)
	if a.LinkBPS[l01] != 28000 || a.LinkBPS[l12] != 28000 {
		t.Errorf("link loads = %v, %v; want 28000 each", a.LinkBPS[l01], a.LinkBPS[l12])
	}
	if got := a.Utilization(l01); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	// Reverse direction carries nothing.
	if a.LinkBPS[g.Link(l01).Reverse()] != 0 {
		t.Error("reverse link should be empty")
	}
	if a.HopMean != 2 {
		t.Errorf("HopMean = %v, want 2", a.HopMean)
	}
	// Delay: two links at rho=0.5 → 2 × (2×service) + 2 × prop.
	s := queueing.ServiceTime(56000)
	want := 2 * (2*s + g.Link(l01).PropDelay)
	if math.Abs(a.DelayMean-want) > 1e-9 {
		t.Errorf("DelayMean = %v, want %v", a.DelayMean, want)
	}
	if a.Unreachable != 0 {
		t.Error("nothing should be unreachable")
	}
	if a.Saturated() {
		t.Error("half-loaded line is not saturated")
	}
}

func TestAssignRespectsCosts(t *testing.T) {
	// Diamond: A-B-D vs A-C-D; price the B path out and all traffic moves.
	g := topology.New()
	a_, b := g.AddNode("A"), g.AddNode("B")
	c, d := g.AddNode("C"), g.AddNode("D")
	ab, _ := g.AddTrunk(a_, b, topology.T56)
	ac, _ := g.AddTrunk(a_, c, topology.T56)
	g.AddTrunk(b, d, topology.T56)
	cd, _ := g.AddTrunk(c, d, topology.T56)

	m := traffic.NewMatrix(4)
	m.Set(a_, d, 10000)
	cost := func(l topology.LinkID) float64 {
		if l == ab || l == g.Link(ab).Reverse() {
			return 10
		}
		return 1
	}
	asg := Assign(g, m, cost)
	if asg.LinkBPS[ac] != 10000 || asg.LinkBPS[cd] != 10000 {
		t.Error("traffic should route via C")
	}
	if asg.LinkBPS[ab] != 0 {
		t.Error("expensive path should be empty")
	}
}

func TestAssignUnreachable(t *testing.T) {
	g := topology.New()
	g.AddNode("A")
	g.AddNode("B")
	g.AddNode("C")
	g.AddTrunk(0, 1, topology.T56)
	m := traffic.NewMatrix(3)
	m.Set(0, 2, 5000) // C is isolated
	m.Set(0, 1, 1000)
	a := Assign(g, m, unit)
	if a.Unreachable != 5000 {
		t.Errorf("Unreachable = %v, want 5000", a.Unreachable)
	}
}

func TestSaturationFlag(t *testing.T) {
	g := topology.Line(2, topology.T56)
	m := traffic.NewMatrix(2)
	m.Set(0, 1, 100000) // ~1.8× the trunk
	a := Assign(g, m, unit)
	if !a.Saturated() {
		t.Error("oversubscribed trunk should flag saturation")
	}
	if a.MaxUtilization() < 1.5 {
		t.Errorf("MaxUtilization = %v, want > 1.5", a.MaxUtilization())
	}
}

func TestFloorCosts(t *testing.T) {
	g := topology.Arpanet()
	cost := FloorCosts(g, func(l topology.Link) float64 {
		return core.NewModule(l.Type, l.PropDelay).Floor()
	})
	// A 56T link's floor is 30 + 100×prop.
	for _, l := range g.Links() {
		if l.Type == topology.T56 {
			want := 30 + 100*l.PropDelay
			if math.Abs(cost(l.ID)-want) > 1e-9 {
				t.Errorf("floor cost = %v, want %v", cost(l.ID), want)
			}
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid floor should panic")
		}
	}()
	FloorCosts(g, func(topology.Link) float64 { return 0 })
}

// Sanity: the flow model reproduces the §4.4 story — when a satellite
// shortcut parallels a multi-hop terrestrial path, HN-SPF floor costs take
// the shortcut (under one extra hop of penalty) while D-SPF floor costs
// shun it (~25× a terrestrial hop).
func TestMetricFloorsRouteDifferently(t *testing.T) {
	g := topology.New()
	a_, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	g.AddTrunkDelay(a_, b, topology.T56, 0.010)
	g.AddTrunkDelay(b, c, topology.T56, 0.010)
	sat, _ := g.AddTrunkDelay(a_, c, topology.S56, 0.260)

	m := traffic.NewMatrix(3)
	m.Set(a_, c, 20000)
	hn := Assign(g, m, FloorCosts(g, func(l topology.Link) float64 {
		return core.NewModule(l.Type, l.PropDelay).Floor()
	}))
	d := Assign(g, m, FloorCosts(g, func(l topology.Link) float64 {
		return metric.NewDSPF(l.Type, l.PropDelay).Bias()
	}))
	if hn.LinkBPS[sat] != 20000 {
		t.Errorf("HN-SPF floors should take the satellite shortcut, got %v bps", hn.LinkBPS[sat])
	}
	if d.LinkBPS[sat] != 0 {
		t.Errorf("D-SPF floors should shun the satellite, got %v bps", d.LinkBPS[sat])
	}
	// §4.4: "decreasing path lengths vis-a-vis those with the delay metric".
	if hn.HopMean >= d.HopMean {
		t.Errorf("HN-SPF hop mean %v should be below D-SPF's %v", hn.HopMean, d.HopMean)
	}
	// The price: the satellite path has higher predicted delay. The metric
	// "will not always result in shortest-delay paths" (§1).
	if hn.DelayMean <= d.DelayMean {
		t.Errorf("satellite path should cost delay: HN %v vs D %v", hn.DelayMean, d.DelayMean)
	}
}

func TestAssignPanics(t *testing.T) {
	g := topology.Ring(3, topology.T56)
	defer func() {
		if recover() == nil {
			t.Error("matrix mismatch should panic")
		}
	}()
	Assign(g, traffic.NewMatrix(5), unit)
}
