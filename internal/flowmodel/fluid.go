package flowmodel

import (
	"math"

	"repro/internal/spf"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// deadCost is the cost a Reassign charges for a link its down predicate
// reports out of service — the same sentinel internal/network floods for a
// dead trunk (DownCost). It is finite so SPF arithmetic stays well-defined,
// and any path reaching it is treated as unroutable: alive paths on the
// topologies this model runs cost orders of magnitude less.
const deadCost = 1e9

// Fluid is the time-varying, epoch-based fluid layer of the hybrid engine:
// a background traffic matrix routed as fluid flows over the SPF trees of
// the *currently advertised* link costs. The owner (internal/network) calls
// Reassign once per epoch, so the background load follows the metric's
// rerouting decisions without a single background packet being scheduled.
// Between epochs the per-link rates are frozen; Scale takes effect
// immediately (a surge raises the load on the current routes, and the
// routes adapt at the next epoch — exactly the lag a packet surge shows on
// the measurement loop).
//
// Not safe for concurrent use.
type Fluid struct {
	g     *topology.Graph
	m     *traffic.Matrix
	scale float64

	ws      spf.Workspace
	costBuf []float64 // penalized per-link costs for the current Reassign

	linkBPS    []float64
	unroutable float64
	reassigns  int64
}

// NewFluid returns a fluid layer for the background matrix m over g. All
// per-link rates are zero until the first Reassign.
func NewFluid(g *topology.Graph, m *traffic.Matrix) *Fluid {
	if m.NumNodes() != g.NumNodes() {
		panic("flowmodel: matrix size mismatch")
	}
	return &Fluid{
		g:       g,
		m:       m,
		scale:   1,
		costBuf: make([]float64, g.NumLinks()),
		linkBPS: make([]float64, g.NumLinks()),
	}
}

// Reassign re-routes the whole background matrix over SPF under the given
// advertised costs, with links the down predicate reports out of service
// priced at deadCost (demand that can only reach its destination through a
// dead link becomes unroutable for this epoch). cost must return positive,
// finite values for every link; down may be nil when nothing is out of
// service. Allocation-free after the first call.
func (f *Fluid) Reassign(cost spf.CostFunc, down func(topology.LinkID) bool) {
	for i := range f.costBuf {
		l := topology.LinkID(i)
		if down != nil && down(l) {
			f.costBuf[i] = deadCost
		} else {
			f.costBuf[i] = cost(l)
		}
	}
	for i := range f.linkBPS {
		f.linkBPS[i] = 0
	}
	f.unroutable = 0
	assignInto(&f.ws, f.linkBPS, &f.unroutable, f.g, f.m, f.scale,
		func(l topology.LinkID) float64 { return f.costBuf[l] }, deadCost)
	f.reassigns++
}

// Scale multiplies the background demand by factor, effective immediately
// on the current routes: per-link rates and the unroutable remainder jump
// now, rerouting happens at the next Reassign. The scenario engine's
// background surge.
func (f *Fluid) Scale(factor float64) {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic("flowmodel: fluid scale factor must be positive and finite")
	}
	f.scale *= factor
	for i := range f.linkBPS {
		f.linkBPS[i] *= factor
	}
	f.unroutable *= factor
}

// SetMatrix replaces the background matrix and resets any accumulated Scale
// factor (mirroring network.SetMatrix, which rebuilds sources from the new
// matrix). The new demand takes effect at the next Reassign.
func (f *Fluid) SetMatrix(m *traffic.Matrix) {
	if m.NumNodes() != f.g.NumNodes() {
		panic("flowmodel: matrix size mismatch")
	}
	f.m = m
	f.scale = 1
}

// LinkBPS returns the background rate currently assigned to the link in
// bits/second.
func (f *Fluid) LinkBPS(l topology.LinkID) float64 { return f.linkBPS[l] }

// Unroutable returns the background demand (bps) the last Reassign could
// not route — destinations unreachable without crossing a dead link.
func (f *Fluid) Unroutable() float64 { return f.unroutable }

// TotalBPS returns the background demand currently offered (matrix total
// times the accumulated scale factor), routable or not.
func (f *Fluid) TotalBPS() float64 { return f.m.Total() * f.scale }

// Reassigns returns how many epochs have re-routed the background so far.
func (f *Fluid) Reassigns() int64 { return f.reassigns }
