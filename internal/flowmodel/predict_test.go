// The simulator cross-check lives in an external test package: the hybrid
// engine makes internal/network depend on flowmodel, so an in-package test
// importing network would be an import cycle.
package flowmodel_test

import (
	"math"
	"testing"

	"repro/internal/flowmodel"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func unit(topology.LinkID) float64 { return 1 }

// The cross-check the package exists for: at light load, the flow model's
// delay prediction matches the packet simulator within modeling error.
func TestPredictionMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	g := topology.Arpanet()
	m := traffic.Gravity(g, topology.ArpanetWeights(), 100000)

	// Analytic prediction with min-hop routing. The M/M/1 model only holds
	// below saturation — at higher loads the simulator drops packets and
	// the survivors' delay diverges from the fluid prediction.
	a := flowmodel.Assign(g, m, unit)
	if a.MaxUtilization() > 0.85 {
		t.Fatalf("setup: max utilization %.2f too close to saturation for the cross-check",
			a.MaxUtilization())
	}

	// Packet simulation with the same static routes.
	nw := network.New(network.Config{
		Graph: g, Matrix: m, Metric: node.MinHop, Seed: 5,
		Warmup: 60 * sim.Second,
	})
	nw.Run(360 * sim.Second)
	r := nw.Report()

	simOneWay := r.RoundTripDelayMs / 2 / 1000
	t.Logf("one-way delay: model %.1f ms, simulation %.1f ms",
		a.DelayMean*1000, simOneWay*1000)
	t.Logf("hops: model %.2f, simulation %.2f", a.HopMean, r.ActualPathHops)
	if math.Abs(a.HopMean-r.ActualPathHops) > 0.2 {
		t.Errorf("hop prediction %v vs simulated %v", a.HopMean, r.ActualPathHops)
	}
	rel := math.Abs(a.DelayMean-simOneWay) / simOneWay
	if rel > 0.30 {
		t.Errorf("delay prediction off by %.0f%% (model %v, sim %v)",
			rel*100, a.DelayMean, simOneWay)
	}
}
