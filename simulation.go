package arpanet

import (
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Report is the set of network-wide performance indicators a simulation
// produces — the rows of the paper's Table 1 plus congestion, loss and
// overhead counters. See internal/network.Report for field documentation;
// its String method renders the Table 1 layout.
type Report = network.Report

// Series is an (x, y) data series, e.g. trunk utilization over time.
type Series = stats.Series

// SimConfig configures a Simulation.
type SimConfig struct {
	// Metric is the link metric to run with (default HNSPF).
	Metric Metric
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// WarmupSeconds discards statistics collected before this time.
	WarmupSeconds float64
	// QueueLimit is the per-trunk output buffer in packets (default 40).
	QueueLimit int
	// Ablations disable individual HNM stabilization mechanisms (only
	// meaningful with Metric == HNSPF); see the HNM* options.
	Ablations []HNMOption
	// Multipath enables equal-cost multipath forwarding — the §4.5
	// extension that load-shares *within* a single large flow, which the
	// metric alone cannot do.
	Multipath bool
	// TraceCapacity, when positive, enables the event log returned by
	// Simulation.Trace, retaining up to this many events.
	TraceCapacity int
	// Background, when non-nil, enables the hybrid fluid/packet engine:
	// this demand is not simulated packet by packet but carried as fluid
	// flows, re-routed over the flooded costs once per epoch and superposed
	// onto each trunk's measured utilization and delay — so the metric,
	// flooding and rerouting see the combined load at a fraction of the
	// event cost. It must have been built from the same Topology.
	Background *Traffic
	// BackgroundEpochSeconds is the fluid re-routing epoch (default 10 s,
	// one measurement period). Only meaningful with Background set.
	BackgroundEpochSeconds float64
}

// Simulation is a packet-level run of a network under one routing metric:
// Poisson traffic from the matrix, FIFO trunk queues with finite buffers,
// 10-second delay measurement driving the metric, and routing updates
// flooded as real high-priority packets.
//
// Not safe for concurrent use; run separate Simulations on separate
// goroutines instead (they share nothing).
type Simulation struct {
	topo *Topology
	n    *network.Network
	tr   *trace.Ring
}

// NewSimulation builds a simulation over the topology and traffic matrix.
// The Traffic must have been built from the same Topology.
func NewSimulation(t *Topology, tr *Traffic, cfg SimConfig) *Simulation {
	if tr.t != t {
		panic("arpanet: Traffic was built for a different Topology")
	}
	nc := network.Config{
		Graph:      t.g,
		Matrix:     tr.m,
		Metric:     cfg.Metric.kind(),
		Seed:       cfg.Seed,
		QueueLimit: cfg.QueueLimit,
		Warmup:     sim.FromSeconds(cfg.WarmupSeconds),
		Multipath:  cfg.Multipath,
	}
	if cfg.Background != nil {
		if cfg.Background.t != t {
			panic("arpanet: Background Traffic was built for a different Topology")
		}
		nc.Background = cfg.Background.m
		nc.BackgroundEpoch = sim.FromSeconds(cfg.BackgroundEpochSeconds)
	}
	var ring *trace.Ring
	if cfg.TraceCapacity > 0 {
		ring = trace.NewRing(cfg.TraceCapacity)
		nc.Trace = ring
	}
	if cfg.Multipath && cfg.Metric == BF1969 {
		panic("arpanet: Multipath requires an SPF metric")
	}
	if len(cfg.Ablations) > 0 {
		if cfg.Metric != HNSPF {
			panic("arpanet: Ablations require Metric == HNSPF")
		}
		opts := cfg.Ablations
		nc.ModuleFactory = func(l topology.Link) node.CostModule {
			return core.NewModuleOptions(core.DefaultParams(l.Type), l.Type.Bandwidth(), l.PropDelay, opts...)
		}
	}
	return &Simulation{topo: t, n: network.New(nc), tr: ring}
}

// RunSeconds advances the simulation to the given absolute time in
// simulated seconds (it does not add to previous calls; RunSeconds(60)
// then RunSeconds(120) runs to t=120).
func (s *Simulation) RunSeconds(t float64) { s.n.Run(sim.FromSeconds(t)) }

// Report computes the performance indicators over the post-warmup window.
func (s *Simulation) Report() Report { return s.n.Report() }

// TrackTrunk records the utilization of the a→b direction of the trunk
// joining two named PSNs, sampled once per simulated second. Call before
// RunSeconds; the series fills as the simulation runs.
func (s *Simulation) TrackTrunk(a, b string) *Series {
	return s.n.TrackLink(s.trunk(a, b))
}

// TrackTrunkCost records the advertised cost of the a→b direction once
// per simulated second. Call before RunSeconds.
func (s *Simulation) TrackTrunkCost(a, b string) *Series {
	return s.n.TrackLinkCost(s.trunk(a, b))
}

// TrunkCost returns the cost currently advertised for the a→b direction.
func (s *Simulation) TrunkCost(a, b string) float64 {
	return s.n.LinkCost(s.trunk(a, b))
}

// FailTrunkAt schedules the trunk between two named PSNs to fail at the
// given simulated time (both directions).
func (s *Simulation) FailTrunkAt(seconds float64, a, b string) {
	l := s.trunk(a, b)
	// Fire-and-forget: the public API exposes no way to unschedule a fault.
	_ = s.n.Kernel().Schedule(sim.FromSeconds(seconds)-s.n.Kernel().Now(), func(sim.Time) {
		s.n.SetTrunkDown(l)
	})
}

// RestoreTrunkAt schedules the trunk to return to service; under HN-SPF it
// comes back at maximum cost and eases in (§5.4).
func (s *Simulation) RestoreTrunkAt(seconds float64, a, b string) {
	l := s.trunk(a, b)
	// Fire-and-forget: see FailTrunkAt.
	_ = s.n.Kernel().Schedule(sim.FromSeconds(seconds)-s.n.Kernel().Now(), func(sim.Time) {
		s.n.SetTrunkUp(l)
	})
}

// BufferDrops returns the user packets dropped to full buffers since
// warmup — the Figure 13 congestion signal.
func (s *Simulation) BufferDrops() int64 { return s.n.BufferDrops() }

func (s *Simulation) trunk(a, b string) topology.LinkID {
	g := s.topo.g
	l, ok := g.FindTrunk(g.MustLookup(a), g.MustLookup(b))
	if !ok {
		panic("arpanet: no trunk between " + a + " and " + b)
	}
	return l
}
