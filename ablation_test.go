package arpanet

// Ablation experiments: re-run the Figure 1 oscillation scenario with one
// HNM stabilization mechanism disabled at a time, demonstrating what each
// buys (§4.3, §5.4). The benchmarks report the oscillation swing and
// routing-update rate as benchmark metrics.

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// ablationRun drives the two-region scenario with the given HNM options
// and returns the trunk-difference swing (oscillation measure) and the
// routing updates per trunk per second.
func ablationRun(seed int64, opts ...HNMOption) (swing float64, updates float64, rep Report) {
	topo := TwoRegion(5, T56)
	// Heavier than the Figure 1 test: the balanced split sits at ~61% per
	// trunk, inside the metric's ramp, so the stabilization mechanisms are
	// actually exercised.
	tr := topo.HotspotTraffic(func(n string) bool {
		return strings.HasPrefix(n, "W")
	}, 170_000, 0.80)
	s := NewSimulation(topo, tr, SimConfig{
		Metric: HNSPF, Seed: seed, WarmupSeconds: 100, Ablations: opts,
	})
	a := s.TrackTrunk("W0", "E0")
	b := s.TrackTrunk("W1", "E1")
	s.RunSeconds(700)
	var w stats.Welford
	for i := 0; i < a.Len() && i < b.Len(); i++ {
		w.Add(a.Y[i] - b.Y[i])
	}
	rep = s.Report()
	return w.StdDev(), rep.UpdatesPerTrunkSec, rep
}

func TestAblationMovementLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	base, _, _ := ablationRun(11)
	noLimits, _, _ := ablationRun(11, HNMWithoutMovementLimits())
	t.Logf("oscillation swing: full HNM %.3f, without movement limits %.3f", base, noLimits)
	// §4.3: the limits "are essential for limiting the amplitude of
	// routing oscillations".
	if noLimits <= base {
		t.Errorf("removing movement limits should increase oscillation: %.3f vs %.3f",
			noLimits, base)
	}
}

func TestAblationMinChange(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	_, base, baseRep := ablationRun(11)
	_, noThresh, noRep := ablationRun(11, HNMWithoutMinChange())
	t.Logf("updates/trunk/sec: full HNM %.2f (orig %d), without threshold %.2f (orig %d)",
		base, baseRep.UpdatesOriginated, noThresh, noRep.UpdatesOriginated)
	// §4.3: the threshold reduces routing-related bandwidth consumption.
	if noRep.UpdatesOriginated <= baseRep.UpdatesOriginated {
		t.Errorf("removing the threshold should increase originations: %d vs %d",
			noRep.UpdatesOriginated, baseRep.UpdatesOriginated)
	}
}

func TestAblationRequiresHNSPF(t *testing.T) {
	topo := Ring(4, T56)
	tr := topo.UniformTraffic(1000)
	defer func() {
		if recover() == nil {
			t.Error("Ablations with a non-HNSPF metric should panic")
		}
	}()
	NewSimulation(topo, tr, SimConfig{Metric: DSPF, Ablations: []HNMOption{HNMWithoutAveraging()}})
}

// BenchmarkAblationBaseline is the unmodified HNM on the oscillation
// scenario; the ablation benchmarks below are read against it.
func BenchmarkAblationBaseline(b *testing.B) { benchAblation(b) }

// BenchmarkAblationNoMovementLimits removes the half-hop movement limits.
func BenchmarkAblationNoMovementLimits(b *testing.B) {
	benchAblation(b, HNMWithoutMovementLimits())
}

// BenchmarkAblationNoAveraging removes the .5/.5 utilization filter.
func BenchmarkAblationNoAveraging(b *testing.B) { benchAblation(b, HNMWithoutAveraging()) }

// BenchmarkAblationSymmetricLimits disables the one-unit upward march.
func BenchmarkAblationSymmetricLimits(b *testing.B) { benchAblation(b, HNMWithSymmetricLimits()) }

// BenchmarkAblationNoMinChange floods every cost change.
func BenchmarkAblationNoMinChange(b *testing.B) { benchAblation(b, HNMWithoutMinChange()) }

func benchAblation(b *testing.B, opts ...HNMOption) {
	var swing, updates float64
	for i := 0; i < b.N; i++ {
		swing, updates, _ = ablationRun(11, opts...)
	}
	b.ReportMetric(swing, "swing")
	b.ReportMetric(updates, "updates/trunk/s")
}

// oscillationPeriod measures the dominant period (in 1-second samples) of
// the trunk-utilization difference in the two-region scenario.
func oscillationPeriod(seed int64, opts ...HNMOption) int {
	topo := TwoRegion(5, T56)
	tr := topo.HotspotTraffic(func(n string) bool {
		return strings.HasPrefix(n, "W")
	}, 170_000, 0.80)
	s := NewSimulation(topo, tr, SimConfig{
		Metric: HNSPF, Seed: seed, WarmupSeconds: 100, Ablations: opts,
	})
	a := s.TrackTrunk("W0", "E0")
	b := s.TrackTrunk("W1", "E1")
	s.RunSeconds(900)
	diff := make([]float64, 0, a.Len())
	for i := 0; i < a.Len() && i < b.Len(); i++ {
		diff = append(diff, a.Y[i]-b.Y[i])
	}
	return stats.DominantPeriod(diff, 200, 0.15)
}

func TestAblationAveragingLengthensPeriod(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	// §4.3: "Averaging increases the period of routing oscillations, thus
	// reducing routing overhead." Remove the movement limits so the
	// oscillation is fully visible, then toggle the averaging filter.
	with := oscillationPeriod(11, HNMWithoutMovementLimits())
	without := oscillationPeriod(11, HNMWithoutMovementLimits(), HNMWithoutAveraging())
	t.Logf("oscillation period: with averaging %d s, without %d s", with, without)
	if without == 0 || with == 0 {
		t.Skip("no dominant period detected at this seed; the swing assertions cover the mechanism")
	}
	if with < without {
		t.Errorf("averaging should lengthen the period: with=%d without=%d", with, without)
	}
}

func TestAblationMD1Simulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	// The queueing-model sensitivity end to end: an HNM with the M/D/1
	// table still stabilizes the oscillation scenario (the metric's
	// stability does not hinge on the M/M/1 assumption).
	swing, _, rep := ablationRun(11, HNMWithMD1Table())
	base, _, _ := ablationRun(11)
	t.Logf("oscillation swing: M/M/1 table %.3f, M/D/1 table %.3f (delivered %.3f)",
		base, swing, rep.DeliveredRatio)
	if rep.DeliveredRatio < 0.95 {
		t.Errorf("M/D/1-table HNM delivered only %.3f", rep.DeliveredRatio)
	}
	if swing > 2.5*base+0.1 {
		t.Errorf("M/D/1 table destabilized the metric: swing %.3f vs %.3f", swing, base)
	}
}
