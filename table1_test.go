package arpanet

// The headline reproduction, as a test: on the ARPANET-like network at the
// calibrated peak-hour load, switching D-SPF → HN-SPF while *raising*
// traffic 13% must improve every Table 1 indicator the paper reports
// improving. cmd/arpanetsim runs the full-length version; this is the
// CI-sized gate.

import "testing"

func table1Test(t *testing.T, m Metric, bps float64) Report {
	t.Helper()
	topo := Arpanet1987()
	tr := topo.GravityTraffic(ArpanetWeights(), bps)
	s := NewSimulation(topo, tr, SimConfig{Metric: m, Seed: 1987, WarmupSeconds: 60})
	s.RunSeconds(260)
	return s.Report()
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	before := table1Test(t, DSPF, 280_000)
	after := table1Test(t, HNSPF, 280_000*1.13)
	t.Logf("before (D-SPF):  %+v", before)
	t.Logf("after (HN-SPF):  %+v", after)

	// Paper: 366→414 kbps carried. Ours must carry more after, despite the
	// +13% offered load being harder.
	if after.InternodeTrafficKbps <= before.InternodeTrafficKbps {
		t.Errorf("carried traffic %0.1f → %0.1f kbps; must rise",
			before.InternodeTrafficKbps, after.InternodeTrafficKbps)
	}
	// Paper: 635 → 339 ms (−47%). Ours: a substantial cut.
	if after.RoundTripDelayMs > 0.8*before.RoundTripDelayMs {
		t.Errorf("round-trip delay %0.f → %0.f ms; want a large reduction",
			before.RoundTripDelayMs, after.RoundTripDelayMs)
	}
	// Paper: 2.04 → 1.74 updates/trunk/s (−15%).
	if after.UpdatesPerTrunkSec >= before.UpdatesPerTrunkSec {
		t.Errorf("updates/trunk/s %0.2f → %0.2f; must fall",
			before.UpdatesPerTrunkSec, after.UpdatesPerTrunkSec)
	}
	// Paper: update period 22.1 → 26.3 s.
	if after.UpdatePeriodPerNode <= before.UpdatePeriodPerNode {
		t.Errorf("update period %0.1f → %0.1f s; must lengthen",
			before.UpdatePeriodPerNode, after.UpdatePeriodPerNode)
	}
	// Paper: path ratio 1.24 → 1.14.
	if after.PathRatio >= before.PathRatio {
		t.Errorf("path ratio %0.3f → %0.3f; must fall",
			before.PathRatio, after.PathRatio)
	}
	// Figure 13's lesson: drops collapse.
	if after.BufferDrops >= before.BufferDrops {
		t.Errorf("buffer drops %d → %d; must fall", before.BufferDrops, after.BufferDrops)
	}
	// Routing overhead (bandwidth) falls with fewer updates.
	if after.RoutingKbps >= before.RoutingKbps {
		t.Errorf("routing overhead %0.1f → %0.1f kbps; must fall",
			before.RoutingKbps, after.RoutingKbps)
	}
}

func TestLightLoadDSPFWins(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	// The honesty check the paper itself makes (§1): "the revised metric
	// involves giving up the guarantee of shortest-delay paths under light
	// traffic conditions". At half the calibrated load, D-SPF's delay must
	// be at least as good as HN-SPF's.
	before := table1Test(t, DSPF, 140_000)
	after := table1Test(t, HNSPF, 140_000)
	t.Logf("light load: D-SPF %.0f ms, HN-SPF %.0f ms",
		before.RoundTripDelayMs, after.RoundTripDelayMs)
	if before.RoundTripDelayMs > after.RoundTripDelayMs*1.1 {
		t.Errorf("at light load D-SPF (%.0f ms) should not lose to HN-SPF (%.0f ms) by >10%%",
			before.RoundTripDelayMs, after.RoundTripDelayMs)
	}
	// Both deliver everything.
	if before.DeliveredRatio < 0.99 || after.DeliveredRatio < 0.99 {
		t.Error("light load should deliver ~everything under both metrics")
	}
}
