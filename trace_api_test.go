package arpanet

import "testing"

func TestTraceDisabledByDefault(t *testing.T) {
	topo := Ring(4, T56)
	s := NewSimulation(topo, topo.UniformTraffic(10000), SimConfig{Seed: 1})
	s.RunSeconds(30)
	if s.Trace() != nil {
		t.Error("trace should be nil unless TraceCapacity is set")
	}
}

func TestTraceRecordsLinkEventsAndUpdates(t *testing.T) {
	topo := Ring(4, T56)
	tr := topo.UniformTraffic(20000)
	s := NewSimulation(topo, tr, SimConfig{
		Metric: HNSPF, Seed: 2, TraceCapacity: 10000,
	})
	s.FailTrunkAt(30, "N0", "N1")
	s.RestoreTrunkAt(60, "N0", "N1")
	s.RunSeconds(120)

	ring := s.Trace()
	if ring == nil {
		t.Fatal("trace enabled but nil")
	}
	if got := len(ring.OfKind(TraceLinkDown)); got != 1 {
		t.Errorf("link-down events = %d, want 1", got)
	}
	if got := len(ring.OfKind(TraceLinkUp)); got != 1 {
		t.Errorf("link-up events = %d, want 1", got)
	}
	if ring.Count(TraceUpdate) == 0 {
		t.Error("no update originations logged in 120 s")
	}
	// Ordering: the down precedes the up.
	down := ring.OfKind(TraceLinkDown)[0]
	up := ring.OfKind(TraceLinkUp)[0]
	if down.At >= up.At {
		t.Error("down should precede up")
	}
	if down.At.Seconds() < 29.9 || down.At.Seconds() > 30.1 {
		t.Errorf("down at %v, want ~30 s", down.At)
	}
}

func TestTraceRecordsDrops(t *testing.T) {
	// Overload a single trunk: drop events must appear with the right link.
	topo := NewTopology()
	topo.AddNode("A")
	topo.AddNode("B")
	topo.AddTrunk("A", "B", T56, 0.001)
	tr := topo.NewTraffic()
	tr.SetRate("A", "B", 80000) // 1.4× the trunk
	s := NewSimulation(topo, tr, SimConfig{
		Metric: MinHop, Seed: 3, TraceCapacity: 100,
	})
	s.RunSeconds(60)
	ring := s.Trace()
	if ring.Count(TraceDrop) == 0 {
		t.Fatal("sustained 140% load must log drops")
	}
	// The ring is bounded: at most 100 events retained, the rest counted.
	if ring.Len() > 100 {
		t.Errorf("ring retained %d events, capacity 100", ring.Len())
	}
	if ring.Count(TraceDrop) > 100 && ring.Overwritten() == 0 {
		t.Error("overflow should be visible via Overwritten")
	}
	for _, e := range ring.OfKind(TraceDrop) {
		if e.Node != 0 {
			t.Fatalf("drop attributed to node %d, want A (0)", e.Node)
		}
	}
}
